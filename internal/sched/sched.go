// Package sched implements the MAC scheduling algorithms used throughout
// the reproduction: the local VSF schedulers at the agent (round-robin,
// proportional fair), the centralized schedulers of the master's
// applications, and the RAN-sharing schedulers of the Fig. 12 use case
// (per-operator slicing with fair and group-based policies).
//
// Schedulers are pure with respect to the data plane: they map an Input
// snapshot (backlogged UEs with channel state) to a list of allocations.
// Some keep internal fairness state (rotation pointers), which is
// explicitly documented per type.
package sched

import (
	"sort"

	"flexran/internal/lte"
)

// UEInfo is the per-UE scheduler input.
type UEInfo struct {
	RNTI lte.RNTI
	// CQI is the latest reported wideband CQI (possibly stale when the
	// scheduler runs remotely; the data plane checks deliverability).
	CQI lte.CQI
	// QueueBytes is the pending RLC transmission queue (DL) or buffer
	// status report (UL).
	QueueBytes int
	// AvgRateKbps is the long-term served rate, maintained by the MAC;
	// the proportional-fair metric divides by it.
	AvgRateKbps float64
	// LastSched is the last subframe this UE was allocated.
	LastSched lte.Subframe
	// Group labels the UE's slice/tier for quota-based schedulers
	// (operator index for RAN sharing, priority tier for group-based).
	Group int
}

// Input is one scheduling invocation: a subframe, a PRB budget and the
// candidate UEs.
type Input struct {
	SF       lte.Subframe
	Dir      lte.Direction
	TotalPRB int
	UEs      []UEInfo
}

// Alloc is one UE's scheduled allocation.
type Alloc struct {
	RNTI    lte.RNTI
	RBStart int
	RBCount int
	MCS     lte.MCS
}

// Scheduler maps an input snapshot to allocations. Implementations must
// never allocate more than Input.TotalPRB resource blocks in total and
// must keep allocations disjoint.
type Scheduler interface {
	// Name identifies the scheduler (used as VSF cache keys and in
	// policy documents).
	Name() string
	Schedule(in Input) []Alloc
}

// bytesPerPRB returns the per-PRB transport capacity for a UE, 0 when the
// UE cannot be served (CQI 0).
func bytesPerPRB(dir lte.Direction, c lte.CQI) int {
	return lte.TBSBytes(dir, c, 1)
}

// FillByOrder allocates PRBs to UEs in the given priority order (indices
// into in.UEs). Each UE receives just enough PRBs to drain its queue this
// TTI, and the remainder flows to the next UE — a work-conserving greedy
// fill used by every priority-ordered scheduler in this package.
func FillByOrder(in Input, order []int) []Alloc {
	var out []Alloc
	rbStart := 0
	left := in.TotalPRB
	for _, idx := range order {
		if left == 0 {
			break
		}
		ue := in.UEs[idx]
		per := bytesPerPRB(in.Dir, ue.CQI)
		if ue.QueueBytes <= 0 || per == 0 {
			continue
		}
		need := (ue.QueueBytes + per - 1) / per
		n := need
		if n > left {
			n = left
		}
		out = append(out, Alloc{
			RNTI:    ue.RNTI,
			RBStart: rbStart,
			RBCount: n,
			MCS:     lte.MCSForCQI(ue.CQI),
		})
		rbStart += n
		left -= n
	}
	return out
}

// backlogged returns the indices of servable UEs (non-empty queue, CQI>0),
// sorted by RNTI for determinism.
func backlogged(in Input) []int {
	var idx []int
	for i, ue := range in.UEs {
		if ue.QueueBytes > 0 && ue.CQI > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return in.UEs[idx[a]].RNTI < in.UEs[idx[b]].RNTI
	})
	return idx
}

// RoundRobin is the fair equal-share scheduler: every backlogged UE gets
// an equal PRB share each TTI, with the integer remainder rotating across
// TTIs so long-run shares equalize. This is the "fair scheduling policy"
// of the Fig. 12b MNO.
type RoundRobin struct {
	rot int // rotation offset for remainder distribution
}

// NewRoundRobin returns a fair equal-share scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "rr" }

// Schedule implements Scheduler.
func (s *RoundRobin) Schedule(in Input) []Alloc {
	idx := backlogged(in)
	if len(idx) == 0 {
		return nil
	}
	share := in.TotalPRB / len(idx)
	extra := in.TotalPRB % len(idx)
	var out []Alloc
	rbStart := 0
	spare := 0 // PRBs returned by UEs that need less than their share
	for pos := range idx {
		// Rotate so the +1 remainder moves across UEs over time.
		i := idx[(pos+s.rot)%len(idx)]
		ue := in.UEs[i]
		quota := share
		if pos < extra {
			quota++
		}
		per := bytesPerPRB(in.Dir, ue.CQI)
		need := (ue.QueueBytes + per - 1) / per
		n := quota + spare
		if n > need {
			spare = n - need
			n = need
		} else {
			spare = 0
		}
		if n == 0 {
			continue
		}
		out = append(out, Alloc{
			RNTI:    ue.RNTI,
			RBStart: rbStart,
			RBCount: n,
			MCS:     lte.MCSForCQI(ue.CQI),
		})
		rbStart += n
	}
	s.rot++
	return out
}

// ProportionalFair ranks UEs by instantaneous-rate over average-rate, the
// classic PF metric, then greedily fills. The average rate is supplied by
// the MAC in UEInfo.AvgRateKbps.
type ProportionalFair struct{}

// NewProportionalFair returns a PF scheduler.
func NewProportionalFair() *ProportionalFair { return &ProportionalFair{} }

// Name implements Scheduler.
func (*ProportionalFair) Name() string { return "pf" }

// Schedule implements Scheduler.
func (s *ProportionalFair) Schedule(in Input) []Alloc {
	idx := backlogged(in)
	sort.SliceStable(idx, func(a, b int) bool {
		return pfMetric(in, in.UEs[idx[a]]) > pfMetric(in, in.UEs[idx[b]])
	})
	return FillByOrder(in, idx)
}

func pfMetric(in Input, ue UEInfo) float64 {
	inst := float64(lte.TBSBits(in.Dir, ue.CQI, in.TotalPRB)) // bits/TTI
	avg := ue.AvgRateKbps
	if avg < 1 {
		avg = 1 // unserved UEs get maximal priority
	}
	return inst / avg
}

// MaxCQI always serves the best channel first (maximum-throughput,
// fairness-free; the baseline that motivates PF).
type MaxCQI struct{}

// NewMaxCQI returns a max-CQI scheduler.
func NewMaxCQI() *MaxCQI { return &MaxCQI{} }

// Name implements Scheduler.
func (*MaxCQI) Name() string { return "maxcqi" }

// Schedule implements Scheduler.
func (s *MaxCQI) Schedule(in Input) []Alloc {
	idx := backlogged(in)
	sort.SliceStable(idx, func(a, b int) bool {
		return in.UEs[idx[a]].CQI > in.UEs[idx[b]].CQI
	})
	return FillByOrder(in, idx)
}

// MetricFunc scores one UE; higher runs first. UEs scoring negative are
// not scheduled at all.
type MetricFunc func(in Input, ue UEInfo) float64

// Metric is the generic priority scheduler: it orders backlogged UEs by a
// caller-supplied metric and greedily fills. The agent uses it to execute
// vsfdsl programs pushed by the master (VSF updation), closing the paper's
// code-push loop.
type Metric struct {
	name string
	fn   MetricFunc
}

// NewMetric builds a metric scheduler.
func NewMetric(name string, fn MetricFunc) *Metric {
	return &Metric{name: name, fn: fn}
}

// Name implements Scheduler.
func (m *Metric) Name() string { return m.name }

// Schedule implements Scheduler.
func (m *Metric) Schedule(in Input) []Alloc {
	idx := backlogged(in)
	scores := make(map[int]float64, len(idx))
	for _, i := range idx {
		scores[i] = m.fn(in, in.UEs[i])
	}
	kept := idx[:0]
	for _, i := range idx {
		if scores[i] >= 0 {
			kept = append(kept, i)
		}
	}
	sort.SliceStable(kept, func(a, b int) bool {
		return scores[kept[a]] > scores[kept[b]]
	})
	return FillByOrder(in, kept)
}
