package sched

import (
	"fmt"
	"sort"
	"sync"

	"flexran/internal/lte"
)

// Slicer partitions the PRB budget among UE groups by configurable shares
// and runs an inner scheduler per group: the RAN-sharing mechanism of the
// Fig. 12 use case (groups = operators for MNO/MVNO slicing, groups =
// priority tiers for premium/secondary scheduling).
//
// Shares are updated at runtime by the master's policy-reconfiguration
// messages; SetShares is safe to call between (not during) Schedule calls,
// mirroring how the agent applies policy between TTIs.
type Slicer struct {
	name   string
	inner  func() Scheduler
	mu     sync.Mutex
	shares []float64
	// workConserving redistributes a group's unused PRBs to other
	// groups. The Fig. 12a experiment runs non-work-conserving so
	// operator throughput tracks the configured quota exactly.
	workConserving bool
	groups         map[int]Scheduler
}

// NewSlicer builds a slicing scheduler. shares[g] is the PRB fraction of
// group g; they should sum to <= 1 (the remainder goes unused). inner
// constructs the per-group scheduler (one instance per group, so stateful
// inner schedulers keep independent fairness state).
func NewSlicer(name string, shares []float64, workConserving bool, inner func() Scheduler) *Slicer {
	return &Slicer{
		name:           name,
		inner:          inner,
		shares:         append([]float64(nil), shares...),
		workConserving: workConserving,
		groups:         map[int]Scheduler{},
	}
}

// Name implements Scheduler.
func (s *Slicer) Name() string { return s.name }

// SetShares replaces the per-group PRB fractions (policy reconfiguration).
func (s *Slicer) SetShares(shares []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shares = append([]float64(nil), shares...)
}

// Shares returns a copy of the current share vector.
func (s *Slicer) Shares() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.shares...)
}

func (s *Slicer) groupSched(g int) Scheduler {
	sc, ok := s.groups[g]
	if !ok {
		sc = s.inner()
		s.groups[g] = sc
	}
	return sc
}

// Schedule implements Scheduler.
func (s *Slicer) Schedule(in Input) []Alloc {
	s.mu.Lock()
	shares := s.shares
	s.mu.Unlock()

	// Partition UEs by group; groups beyond the share vector get 0.
	byGroup := map[int][]UEInfo{}
	for _, ue := range in.UEs {
		byGroup[ue.Group] = append(byGroup[ue.Group], ue)
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)

	quota := make(map[int]int, len(groups))
	assigned := 0
	for _, g := range groups {
		var q int
		if g >= 0 && g < len(shares) {
			q = int(shares[g]*float64(in.TotalPRB) + 0.5)
		}
		if assigned+q > in.TotalPRB {
			q = in.TotalPRB - assigned
		}
		quota[g] = q
		assigned += q
	}
	spare := in.TotalPRB - assigned

	var out []Alloc
	rbStart := 0
	for _, g := range groups {
		q := quota[g]
		if s.workConserving {
			q += spare
		}
		if q == 0 {
			continue
		}
		sub := Input{SF: in.SF, Dir: in.Dir, TotalPRB: q, UEs: byGroup[g]}
		allocs := s.groupSched(g).Schedule(sub)
		used := 0
		for _, a := range allocs {
			a.RBStart = rbStart + used
			out = append(out, a)
			used += a.RBCount
		}
		if s.workConserving {
			spare = q - used
			if spare < 0 {
				spare = 0
			}
		}
		rbStart += used
	}
	return out
}

// GroupShares is a convenience for building tiered share vectors: the
// premium/secondary split of the Fig. 12b MVNO is GroupShares(0.7, 0.3).
func GroupShares(fracs ...float64) []float64 { return fracs }

// Parametrizable is implemented by schedulers whose behaviour can be tuned
// through the policy-reconfiguration "parameters" section (paper Fig. 3).
type Parametrizable interface {
	// SetParam applies one named parameter. Supported value types are
	// float64, []float64, string and bool, mirroring the yamlite scalar
	// and sequence kinds.
	SetParam(name string, value interface{}) error
}

// SetParam implements Parametrizable for the slicer: the "rb_share"
// parameter replaces the per-group share vector.
func (s *Slicer) SetParam(name string, value interface{}) error {
	switch name {
	case "rb_share", "shares":
		shares, ok := value.([]float64)
		if !ok {
			return fmt.Errorf("sched: %s expects a float sequence, got %T", name, value)
		}
		if err := ValidateShares(shares); err != nil {
			return err
		}
		s.SetShares(shares)
		return nil
	}
	return fmt.Errorf("sched: slicer has no parameter %q", name)
}

// ValidateShares checks a share vector received in a policy document.
func ValidateShares(shares []float64) error {
	sum := 0.0
	for i, f := range shares {
		if f < 0 || f > 1 {
			return fmt.Errorf("sched: share %d = %v out of [0,1]", i, f)
		}
		sum += f
	}
	if sum > 1.0001 {
		return fmt.Errorf("sched: shares sum to %v > 1", sum)
	}
	return nil
}

// RemoteStub is the agent-side stand-in for a centralized scheduler: it
// applies decisions previously pushed by the master for the exact target
// subframe and schedules nothing when no valid decision arrived (the
// missed-deadline behaviour measured in Fig. 9).
//
// The agent's MAC control module feeds pushed decisions via Push and the
// data plane invokes Schedule each TTI like any other VSF.
type RemoteStub struct {
	mu      sync.Mutex
	pending map[lte.Subframe][]Alloc
	applied int
	missed  int
}

// NewRemoteStub returns an empty stub.
func NewRemoteStub() *RemoteStub {
	return &RemoteStub{pending: map[lte.Subframe][]Alloc{}}
}

// Name implements Scheduler.
func (*RemoteStub) Name() string { return "remote" }

// Push stores a decision for a target subframe. Decisions for subframes
// already in the past are dropped (arrived too late to be valid).
func (s *RemoteStub) Push(target, now lte.Subframe, allocs []Alloc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if target < now {
		s.missed++
		return false
	}
	s.pending[target] = allocs
	return true
}

// Schedule implements Scheduler: it applies the decision stored for in.SF.
func (s *RemoteStub) Schedule(in Input) []Alloc {
	s.mu.Lock()
	defer s.mu.Unlock()
	allocs, ok := s.pending[in.SF]
	if !ok {
		s.missed++
		return nil
	}
	delete(s.pending, in.SF)
	s.applied++
	// Clamp to budget defensively: the master may have computed against a
	// stale configuration.
	var out []Alloc
	used := 0
	for _, a := range allocs {
		if used+a.RBCount > in.TotalPRB {
			a.RBCount = in.TotalPRB - used
		}
		if a.RBCount <= 0 {
			continue
		}
		a.RBStart = used
		out = append(out, a)
		used += a.RBCount
	}
	// Drop decisions for subframes that have now passed.
	for sf := range s.pending {
		if sf < in.SF {
			delete(s.pending, sf)
			s.missed++
		}
	}
	return out
}

// Stats reports how many pushed decisions were applied vs missed.
func (s *RemoteStub) Stats() (applied, missed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied, s.missed
}
