package sched

import (
	"testing"
	"testing/quick"

	"flexran/internal/lte"
)

func mkInput(sf lte.Subframe, prbs int, ues ...UEInfo) Input {
	return Input{SF: sf, Dir: lte.Downlink, TotalPRB: prbs, UEs: ues}
}

// checkInvariants asserts the allocation contract every scheduler must
// honor: disjoint contiguous ranges within [0, TotalPRB), no duplicate
// RNTIs, valid MCS.
func checkInvariants(t *testing.T, in Input, allocs []Alloc) {
	t.Helper()
	used := 0
	seen := map[lte.RNTI]bool{}
	for _, a := range allocs {
		if a.RBCount <= 0 {
			t.Fatalf("empty allocation %+v", a)
		}
		if a.RBStart != used {
			t.Fatalf("non-contiguous allocation %+v (expected start %d)", a, used)
		}
		used += a.RBCount
		if used > in.TotalPRB {
			t.Fatalf("over-allocated: %d > %d", used, in.TotalPRB)
		}
		if seen[a.RNTI] {
			t.Fatalf("RNTI %d allocated twice", a.RNTI)
		}
		seen[a.RNTI] = true
		if a.MCS > lte.MaxMCS {
			t.Fatalf("invalid MCS %d", a.MCS)
		}
	}
}

func TestFillByOrderSizesByNeed(t *testing.T) {
	// UE 1 needs 2 PRBs worth of data, UE 2 is full buffer.
	per := lte.TBSBytes(lte.Downlink, 10, 1)
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 2 * per},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20},
	)
	allocs := FillByOrder(in, []int{0, 1})
	checkInvariants(t, in, allocs)
	if len(allocs) != 2 {
		t.Fatalf("allocs = %+v", allocs)
	}
	if allocs[0].RBCount != 2 {
		t.Errorf("UE1 got %d PRBs, want 2", allocs[0].RBCount)
	}
	if allocs[1].RBCount != 48 {
		t.Errorf("UE2 got %d PRBs, want 48", allocs[1].RBCount)
	}
}

func TestFillByOrderSkipsUnservable(t *testing.T) {
	in := mkInput(0, 10,
		UEInfo{RNTI: 1, CQI: 0, QueueBytes: 1000},  // out of range
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 0},    // empty queue
		UEInfo{RNTI: 3, CQI: 5, QueueBytes: 99999}, // servable
	)
	allocs := FillByOrder(in, []int{0, 1, 2})
	if len(allocs) != 1 || allocs[0].RNTI != 3 {
		t.Fatalf("allocs = %+v", allocs)
	}
	checkInvariants(t, in, allocs)
}

func TestRoundRobinEqualShares(t *testing.T) {
	rr := NewRoundRobin()
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20},
		UEInfo{RNTI: 3, CQI: 10, QueueBytes: 1 << 20},
		UEInfo{RNTI: 4, CQI: 10, QueueBytes: 1 << 20},
		UEInfo{RNTI: 5, CQI: 10, QueueBytes: 1 << 20},
	)
	allocs := rr.Schedule(in)
	checkInvariants(t, in, allocs)
	if len(allocs) != 5 {
		t.Fatalf("want 5 allocations, got %d", len(allocs))
	}
	for _, a := range allocs {
		if a.RBCount != 10 {
			t.Errorf("RNTI %d got %d PRBs, want 10", a.RNTI, a.RBCount)
		}
	}
}

func TestRoundRobinRotatesRemainder(t *testing.T) {
	rr := NewRoundRobin()
	full := func() Input {
		return mkInput(0, 10,
			UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20},
			UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20},
			UEInfo{RNTI: 3, CQI: 10, QueueBytes: 1 << 20},
		)
	}
	total := map[lte.RNTI]int{}
	for i := 0; i < 300; i++ {
		for _, a := range rr.Schedule(full()) {
			total[a.RNTI] += a.RBCount
		}
	}
	// 10 PRB / 3 UEs over 300 TTIs: every UE should get 1000 +- rotation.
	for rnti, prbs := range total {
		if prbs < 990 || prbs > 1010 {
			t.Errorf("RNTI %d total = %d, want ~1000", rnti, prbs)
		}
	}
}

func TestRoundRobinSpareReassignment(t *testing.T) {
	// One tiny queue, one full buffer: the spare PRBs of UE1 must flow to
	// UE2 in the same TTI (work conservation).
	per := lte.TBSBytes(lte.Downlink, 10, 1)
	rr := NewRoundRobin()
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: per},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20},
	)
	allocs := rr.Schedule(in)
	checkInvariants(t, in, allocs)
	got := map[lte.RNTI]int{}
	for _, a := range allocs {
		got[a.RNTI] = a.RBCount
	}
	if got[1] != 1 {
		t.Errorf("UE1 = %d PRBs, want 1", got[1])
	}
	if got[2] != 49 {
		t.Errorf("UE2 = %d PRBs, want 49 (work conservation)", got[2])
	}
}

func TestProportionalFairPrefersUnderserved(t *testing.T) {
	pf := NewProportionalFair()
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20, AvgRateKbps: 20000},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20, AvgRateKbps: 100},
	)
	allocs := pf.Schedule(in)
	checkInvariants(t, in, allocs)
	if len(allocs) == 0 || allocs[0].RNTI != 2 {
		t.Fatalf("PF should serve the starved UE first: %+v", allocs)
	}
}

func TestProportionalFairPrefersGoodChannelAtEqualAvg(t *testing.T) {
	pf := NewProportionalFair()
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 4, QueueBytes: 1 << 20, AvgRateKbps: 1000},
		UEInfo{RNTI: 2, CQI: 14, QueueBytes: 1 << 20, AvgRateKbps: 1000},
	)
	allocs := pf.Schedule(in)
	if len(allocs) == 0 || allocs[0].RNTI != 2 {
		t.Fatalf("PF should exploit the better channel: %+v", allocs)
	}
}

func TestMaxCQIOrdering(t *testing.T) {
	m := NewMaxCQI()
	in := mkInput(0, 4,
		UEInfo{RNTI: 1, CQI: 3, QueueBytes: 1 << 20},
		UEInfo{RNTI: 2, CQI: 15, QueueBytes: 1 << 20},
		UEInfo{RNTI: 3, CQI: 9, QueueBytes: 1 << 20},
	)
	allocs := m.Schedule(in)
	checkInvariants(t, in, allocs)
	// Budget exhausted by the best UE.
	if len(allocs) != 1 || allocs[0].RNTI != 2 {
		t.Fatalf("allocs = %+v", allocs)
	}
}

func TestMetricSchedulerNegativeExcludes(t *testing.T) {
	m := NewMetric("test", func(in Input, ue UEInfo) float64 {
		if ue.RNTI == 1 {
			return -1 // excluded
		}
		return float64(ue.CQI)
	})
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 15, QueueBytes: 1 << 20},
		UEInfo{RNTI: 2, CQI: 5, QueueBytes: 1 << 20},
	)
	allocs := m.Schedule(in)
	if len(allocs) != 1 || allocs[0].RNTI != 2 {
		t.Fatalf("allocs = %+v", allocs)
	}
}

func TestSlicerQuotaEnforcement(t *testing.T) {
	// 70/30 split, both groups saturated: allocations must match quota.
	s := NewSlicer("slice", []float64{0.7, 0.3}, false, func() Scheduler { return NewRoundRobin() })
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20, Group: 0},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20, Group: 0},
		UEInfo{RNTI: 3, CQI: 10, QueueBytes: 1 << 20, Group: 1},
	)
	allocs := s.Schedule(in)
	checkInvariants(t, in, allocs)
	byGroup := map[int]int{}
	group := map[lte.RNTI]int{1: 0, 2: 0, 3: 1}
	for _, a := range allocs {
		byGroup[group[a.RNTI]] += a.RBCount
	}
	if byGroup[0] != 35 {
		t.Errorf("group 0 = %d PRBs, want 35", byGroup[0])
	}
	if byGroup[1] != 15 {
		t.Errorf("group 1 = %d PRBs, want 15", byGroup[1])
	}
}

func TestSlicerNonWorkConservingWastesUnused(t *testing.T) {
	// Group 1 idle: its quota must NOT flow to group 0.
	s := NewSlicer("slice", []float64{0.5, 0.5}, false, func() Scheduler { return NewRoundRobin() })
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20, Group: 0},
	)
	allocs := s.Schedule(in)
	total := 0
	for _, a := range allocs {
		total += a.RBCount
	}
	if total != 25 {
		t.Errorf("allocated %d PRBs, want 25 (strict quota)", total)
	}
}

func TestSlicerWorkConservingRedistributes(t *testing.T) {
	s := NewSlicer("slice", []float64{0.5, 0.5}, true, func() Scheduler { return NewRoundRobin() })
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20, Group: 1},
	)
	allocs := s.Schedule(in)
	total := 0
	for _, a := range allocs {
		total += a.RBCount
	}
	if total != 50 {
		t.Errorf("allocated %d PRBs, want 50 (work conserving)", total)
	}
}

func TestSlicerSetShares(t *testing.T) {
	s := NewSlicer("slice", []float64{0.7, 0.3}, false, func() Scheduler { return NewRoundRobin() })
	in := mkInput(0, 50,
		UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20, Group: 0},
		UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1 << 20, Group: 1},
	)
	s.SetShares([]float64{0.4, 0.6})
	allocs := s.Schedule(in)
	got := map[lte.RNTI]int{}
	for _, a := range allocs {
		got[a.RNTI] += a.RBCount
	}
	if got[1] != 20 || got[2] != 30 {
		t.Errorf("shares after reconfig = %v, want 20/30", got)
	}
	if sh := s.Shares(); sh[0] != 0.4 || sh[1] != 0.6 {
		t.Errorf("Shares() = %v", sh)
	}
}

func TestValidateShares(t *testing.T) {
	if err := ValidateShares([]float64{0.7, 0.3}); err != nil {
		t.Errorf("valid shares rejected: %v", err)
	}
	if err := ValidateShares([]float64{0.8, 0.4}); err == nil {
		t.Error("sum > 1 accepted")
	}
	if err := ValidateShares([]float64{-0.1}); err == nil {
		t.Error("negative share accepted")
	}
	if err := ValidateShares([]float64{1.5}); err == nil {
		t.Error("share > 1 accepted")
	}
}

func TestRemoteStubAppliesExactSubframe(t *testing.T) {
	st := NewRemoteStub()
	decision := []Alloc{{RNTI: 1, RBCount: 10, MCS: 15}}
	if !st.Push(100, 95, decision) {
		t.Fatal("push for future subframe rejected")
	}
	in := mkInput(99, 50, UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1 << 20})
	if got := st.Schedule(in); got != nil {
		t.Fatalf("applied at wrong subframe: %+v", got)
	}
	in.SF = 100
	got := st.Schedule(in)
	if len(got) != 1 || got[0].RNTI != 1 || got[0].RBCount != 10 {
		t.Fatalf("decision not applied: %+v", got)
	}
	applied, missed := st.Stats()
	if applied != 1 || missed != 1 {
		t.Errorf("stats = %d applied, %d missed", applied, missed)
	}
}

func TestRemoteStubRejectsLateDecisions(t *testing.T) {
	st := NewRemoteStub()
	if st.Push(50, 60, []Alloc{{RNTI: 1, RBCount: 5}}) {
		t.Error("late push accepted")
	}
	_, missed := st.Stats()
	if missed != 1 {
		t.Errorf("missed = %d, want 1", missed)
	}
}

func TestRemoteStubClampsOversizedDecision(t *testing.T) {
	st := NewRemoteStub()
	st.Push(10, 0, []Alloc{
		{RNTI: 1, RBCount: 40, MCS: 10},
		{RNTI: 2, RBCount: 40, MCS: 10},
	})
	in := mkInput(10, 50, UEInfo{RNTI: 1, CQI: 10, QueueBytes: 1}, UEInfo{RNTI: 2, CQI: 10, QueueBytes: 1})
	allocs := st.Schedule(in)
	total := 0
	for _, a := range allocs {
		total += a.RBCount
	}
	if total != 50 {
		t.Errorf("clamped total = %d, want 50", total)
	}
}

func TestPropertySchedulersNeverOverAllocate(t *testing.T) {
	scheds := []func() Scheduler{
		func() Scheduler { return NewRoundRobin() },
		func() Scheduler { return NewProportionalFair() },
		func() Scheduler { return NewMaxCQI() },
		func() Scheduler {
			return NewSlicer("s", []float64{0.5, 0.5}, true, func() Scheduler { return NewRoundRobin() })
		},
	}
	f := func(seed uint32, nUE uint8, prbs uint8) bool {
		n := int(nUE%20) + 1
		total := int(prbs%100) + 1
		in := Input{SF: lte.Subframe(seed), Dir: lte.Downlink, TotalPRB: total}
		x := seed
		for i := 0; i < n; i++ {
			x = x*1664525 + 1013904223
			in.UEs = append(in.UEs, UEInfo{
				RNTI:        lte.RNTI(i + 1),
				CQI:         lte.CQI(x % 16),
				QueueBytes:  int(x % 100000),
				AvgRateKbps: float64(x % 10000),
				Group:       int(x % 2),
			})
		}
		for _, mk := range scheds {
			used := 0
			starts := map[int]bool{}
			for _, a := range mk().Schedule(in) {
				if a.RBCount <= 0 || a.RBStart < 0 || a.RBStart+a.RBCount > total {
					return false
				}
				for rb := a.RBStart; rb < a.RBStart+a.RBCount; rb++ {
					if starts[rb] {
						return false // overlap
					}
					starts[rb] = true
				}
				used += a.RBCount
			}
			if used > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
