package sched

import "flexran/internal/lte"

// This file holds the composite schedulers of the eICIC use case
// (paper §6.1): agent-side VSFs whose behaviour depends on whether the
// current subframe is an almost-blank subframe (ABS).

// SubframePredicate reports a property of a subframe (e.g. "is ABS").
type SubframePredicate func(sf lte.Subframe) bool

// ABSPattern returns the paper's experiment pattern: the first n subframes
// of every radio frame are almost-blank.
func ABSPattern(n int) SubframePredicate {
	return func(sf lte.Subframe) bool { return int(sf.Index()) < n }
}

// ABSGate runs the inner scheduler only in subframes matching the
// predicate: the small-cell VSF of the eICIC experiment (schedule victims
// during ABS, stay silent otherwise).
type ABSGate struct {
	name   string
	During SubframePredicate
	Inner  Scheduler
}

// NewABSGate builds a gate scheduler.
func NewABSGate(name string, during SubframePredicate, inner Scheduler) *ABSGate {
	return &ABSGate{name: name, During: during, Inner: inner}
}

// Name implements Scheduler.
func (g *ABSGate) Name() string { return g.name }

// Schedule implements Scheduler.
func (g *ABSGate) Schedule(in Input) []Alloc {
	if !g.During(in.SF) {
		return nil
	}
	return g.Inner.Schedule(in)
}

// ABSSwitch runs Normal outside ABS subframes and DuringABS inside them:
// the macro-cell VSF of the eICIC experiment. With DuringABS set to a
// RemoteStub, the macro transmits in an ABS only when the centralized
// coordinator has granted it that subframe — the "optimized eICIC"
// mechanism; with DuringABS nil the macro is strictly muted (plain eICIC).
type ABSSwitch struct {
	name      string
	ABS       SubframePredicate
	Normal    Scheduler
	DuringABS Scheduler
}

// NewABSSwitch builds a switch scheduler.
func NewABSSwitch(name string, abs SubframePredicate, normal, duringABS Scheduler) *ABSSwitch {
	return &ABSSwitch{name: name, ABS: abs, Normal: normal, DuringABS: duringABS}
}

// Name implements Scheduler.
func (s *ABSSwitch) Name() string { return s.name }

// Schedule implements Scheduler.
func (s *ABSSwitch) Schedule(in Input) []Alloc {
	if s.ABS(in.SF) {
		if s.DuringABS == nil {
			return nil
		}
		return s.DuringABS.Schedule(in)
	}
	return s.Normal.Schedule(in)
}
