package conc

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		const n = 57
		var seen [n]atomic.Int32
		ForEach(workers, n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachIsBarrier(t *testing.T) {
	var done atomic.Int32
	ForEach(8, 200, func(int) { done.Add(1) })
	if done.Load() != 200 {
		t.Fatalf("ForEach returned before all work finished: %d/200", done.Load())
	}
}
