// Package conc holds the small concurrency primitive shared by the
// sharded TTI engine and the master's parallel RIB-updater slot.
package conc

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning the indices out
// across up to workers goroutines that claim work off a shared counter,
// and returns only when every call has finished (the phase barrier the
// TTI engine relies on). With workers <= 1 it runs inline on the caller.
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
