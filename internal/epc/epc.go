// Package epc is the minimal evolved-packet-core substrate standing in for
// openair-cn in the paper's testbed: it owns the bearer table mapping
// subscribers (IMSIs) to their serving eNodeB/RNTI and routes downlink
// traffic into the right RLC queue, with per-bearer accounting.
//
// The experiments only exercise the S1-U-like user plane (downlink
// injection, uplink sink); mobility anchoring and NAS signaling are out of
// scope for every figure in the paper's evaluation and are therefore not
// modeled.
package epc

import (
	"fmt"
	"sort"

	"flexran/internal/enb"
	"flexran/internal/lte"
)

// Bearer is one default bearer (IMSI to eNodeB/RNTI binding).
type Bearer struct {
	IMSI uint64
	ENB  lte.ENBID
	RNTI lte.RNTI
	// TEID is the GTP tunnel id assigned at setup.
	TEID uint32

	// Accounting.
	DLOffered  uint64 // bytes presented by the traffic source
	DLAccepted uint64 // bytes accepted into the RLC queue
}

// EPC routes user-plane traffic to registered eNodeBs.
type EPC struct {
	enbs     map[lte.ENBID]*enb.ENB
	bearers  map[uint64]*Bearer
	nextTEID uint32
}

// New returns an empty core.
func New() *EPC {
	return &EPC{
		enbs:     map[lte.ENBID]*enb.ENB{},
		bearers:  map[uint64]*Bearer{},
		nextTEID: 1,
	}
}

// Register connects an eNodeB's S1 interface.
func (c *EPC) Register(e *enb.ENB) {
	c.enbs[e.ID()] = e
}

// Attach creates the default bearer for a subscriber.
func (c *EPC) Attach(imsi uint64, enbID lte.ENBID, rnti lte.RNTI) (*Bearer, error) {
	if _, ok := c.enbs[enbID]; !ok {
		return nil, fmt.Errorf("epc: unknown eNodeB %d", enbID)
	}
	if _, dup := c.bearers[imsi]; dup {
		return nil, fmt.Errorf("epc: IMSI %d already attached", imsi)
	}
	b := &Bearer{IMSI: imsi, ENB: enbID, RNTI: rnti, TEID: c.nextTEID}
	c.nextTEID++
	c.bearers[imsi] = b
	return b, nil
}

// Detach removes a subscriber's bearer.
func (c *EPC) Detach(imsi uint64) {
	delete(c.bearers, imsi)
}

// Downlink routes bytes toward a subscriber, returning the bytes accepted
// by the eNodeB queue (the rest were dropped at the RLC cap).
func (c *EPC) Downlink(imsi uint64, bytes int) (int, error) {
	b, ok := c.bearers[imsi]
	if !ok {
		return 0, fmt.Errorf("epc: no bearer for IMSI %d", imsi)
	}
	e := c.enbs[b.ENB]
	if e == nil {
		return 0, fmt.Errorf("epc: eNodeB %d gone", b.ENB)
	}
	accepted := e.DLEnqueue(b.RNTI, bytes)
	b.DLOffered += uint64(bytes)
	b.DLAccepted += uint64(accepted)
	return accepted, nil
}

// Bearer returns a subscriber's bearer.
func (c *EPC) Bearer(imsi uint64) (*Bearer, bool) {
	b, ok := c.bearers[imsi]
	return b, ok
}

// Bearers lists all bearers ordered by IMSI.
func (c *EPC) Bearers() []*Bearer {
	out := make([]*Bearer, 0, len(c.bearers))
	for _, b := range c.bearers {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IMSI < out[j].IMSI })
	return out
}

// Handover rebinds a subscriber's bearer to a new eNodeB/RNTI (the S1 path
// switch at the end of a handover).
func (c *EPC) Handover(imsi uint64, newENB lte.ENBID, newRNTI lte.RNTI) error {
	b, ok := c.bearers[imsi]
	if !ok {
		return fmt.Errorf("epc: no bearer for IMSI %d", imsi)
	}
	if _, ok := c.enbs[newENB]; !ok {
		return fmt.Errorf("epc: unknown eNodeB %d", newENB)
	}
	b.ENB, b.RNTI = newENB, newRNTI
	return nil
}
