package epc

import (
	"testing"

	"flexran/internal/enb"
	"flexran/internal/lte"
	"flexran/internal/radio"
)

func setup(t *testing.T) (*EPC, *enb.ENB, lte.RNTI) {
	t.Helper()
	e := enb.New(enb.Config{ID: 1, Seed: 1})
	rnti, err := e.AddUE(enb.UEParams{IMSI: 100, Cell: 0, Channel: radio.Fixed(15)})
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.Register(e)
	return c, e, rnti
}

func TestAttachAndDownlink(t *testing.T) {
	c, e, rnti := setup(t)
	b, err := c.Attach(100, 1, rnti)
	if err != nil {
		t.Fatal(err)
	}
	if b.TEID == 0 {
		t.Error("no TEID assigned")
	}
	n, err := c.Downlink(100, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("Downlink = %d, %v", n, err)
	}
	if b.DLOffered != 5000 || b.DLAccepted != 5000 {
		t.Errorf("accounting = %+v", b)
	}
	// The bytes must be visible in the eNodeB queue.
	r, _ := e.UEReport(rnti)
	if r.DLQueue < 5000 {
		t.Errorf("RLC queue = %d, want >= 5000", r.DLQueue)
	}
}

func TestAttachErrors(t *testing.T) {
	c, _, rnti := setup(t)
	if _, err := c.Attach(100, 42, rnti); err == nil {
		t.Error("unknown eNodeB accepted")
	}
	if _, err := c.Attach(100, 1, rnti); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(100, 1, rnti); err == nil {
		t.Error("duplicate IMSI accepted")
	}
}

func TestDownlinkWithoutBearer(t *testing.T) {
	c, _, _ := setup(t)
	if _, err := c.Downlink(999, 100); err == nil {
		t.Error("downlink without bearer accepted")
	}
}

func TestDownlinkAccountsDrops(t *testing.T) {
	e := enb.New(enb.Config{ID: 1, Seed: 1, DLQueueCap: 1000})
	rnti, _ := e.AddUE(enb.UEParams{IMSI: 100, Cell: 0, Channel: radio.Fixed(15)})
	c := New()
	c.Register(e)
	b, _ := c.Attach(100, 1, rnti)
	n, err := c.Downlink(100, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("accepted = %d, want 1000 (queue cap)", n)
	}
	if b.DLOffered != 5000 || b.DLAccepted != 1000 {
		t.Errorf("accounting = %+v", b)
	}
}

func TestDetachStopsRouting(t *testing.T) {
	c, _, rnti := setup(t)
	c.Attach(100, 1, rnti)
	c.Detach(100)
	if _, err := c.Downlink(100, 100); err == nil {
		t.Error("downlink after detach accepted")
	}
	if _, ok := c.Bearer(100); ok {
		t.Error("bearer still present")
	}
}

func TestBearersOrdered(t *testing.T) {
	c, _, rnti := setup(t)
	c.Attach(300, 1, rnti)
	c.Attach(100, 1, rnti)
	c.Attach(200, 1, rnti)
	bs := c.Bearers()
	if len(bs) != 3 || bs[0].IMSI != 100 || bs[2].IMSI != 300 {
		t.Errorf("bearers = %+v", bs)
	}
}

func TestHandover(t *testing.T) {
	c, _, rnti := setup(t)
	e2 := enb.New(enb.Config{ID: 2, Seed: 2})
	rnti2, _ := e2.AddUE(enb.UEParams{IMSI: 100, Cell: 0, Channel: radio.Fixed(15)})
	c.Register(e2)
	c.Attach(100, 1, rnti)
	if err := c.Handover(100, 2, rnti2); err != nil {
		t.Fatal(err)
	}
	b, _ := c.Bearer(100)
	if b.ENB != 2 || b.RNTI != rnti2 {
		t.Errorf("bearer after handover = %+v", b)
	}
	// Traffic now lands on the new eNodeB.
	if _, err := c.Downlink(100, 100); err != nil {
		t.Fatal(err)
	}
	r, _ := e2.UEReport(rnti2)
	if r.DLQueue == 0 {
		t.Error("traffic not rerouted")
	}
	if err := c.Handover(100, 42, rnti2); err == nil {
		t.Error("handover to unknown eNodeB accepted")
	}
	if err := c.Handover(999, 2, rnti2); err == nil {
		t.Error("handover of unknown IMSI accepted")
	}
}
