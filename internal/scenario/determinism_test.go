package scenario

import (
	"reflect"
	"testing"
)

// sweepDoc composes most engine features — geo mobility with handovers,
// a traffic mix, slicing, apps and a fault script — into one compact
// world whose digest must be invariant across worker-pool sizes.
const sweepDoc = `
name: sweep
run:
  ttis: 2500
  attach_ttis: 500
  seed: 42
topology:
  enbs:
    - id: 1
      seed: 1
      x: 0
      power_dbm: 43
    - id: 2
      seed: 2
      x: 1000
      power_dbm: 43
slicing:
  - enb: all
    shares: [0.6, 0.4]
ues:
  - count: 2
    enb: 1
    imsi_base: 100
    group: 0
    mobility:
      model: waypoint
      path: [[350, 0], [750, 0]]
      speed_mps: 150
      speed_step_mps: 50
      ping_pong: true
    traffic:
      - kind: cbr
        share: 0.5
        rate_kbps: 400
      - kind: poisson
        share: 0.5
        mean_kbps: 200
        seed: 5
  - count: 2
    enb: 2
    imsi_base: 200
    group: 1
    placement:
      at: [1100, 50]
    traffic:
      - kind: full_buffer
apps:
  - kind: mobility
  - kind: monitor
    period_tti: 100
faults:
  - at: 600
    kind: link_cut
    enb: 2
  - at: 1200
    kind: link_restore
    enb: 2
  - at: 1800
    kind: agent_restart
    enb: 1
`

// TestDigestWorkerInvariance is the scenario engine's determinism gate:
// the same document must produce identical summaries (and digests) for
// every worker-pool size. This is the property that lets scenarios/
// goldens be computed once and compared at any -workers value in CI.
func TestDigestWorkerInvariance(t *testing.T) {
	sc, err := Parse(sweepDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := sc.RunWorkers(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Summary.Workers != workers {
			t.Fatalf("summary workers = %d, want %d", res.Summary.Workers, workers)
		}
		if ref == nil {
			ref = res
			if res.Summary.Digest == "" {
				t.Fatal("empty digest")
			}
			continue
		}
		if res.Summary.Digest != ref.Summary.Digest {
			t.Errorf("workers=%d digest %s != serial %s",
				workers, res.Summary.Digest, ref.Summary.Digest)
		}
		// The whole summary minus the worker count must match too.
		a, b := res.Summary, ref.Summary
		a.Workers, b.Workers = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d summary diverges from serial:\n%+v\nvs\n%+v", workers, a, b)
		}
	}
	if ref.Summary.Handovers == 0 {
		t.Error("sweep scenario produced no handovers; it no longer covers mobility")
	}
	if ref.Summary.AgentDowns == 0 || ref.Summary.AgentUps == 0 {
		t.Error("sweep scenario produced no lifecycle events; it no longer covers resilience")
	}
	if len(ref.Summary.Slices) != 2 {
		t.Errorf("expected 2 slice aggregates, got %d", len(ref.Summary.Slices))
	}
}

// brokerDoc exercises the elastic slice broker end to end: two founding
// slices (one starved against an unattainable floor), a mid-run arrival
// that is admitted, and one that is rejected by policy.
const brokerDoc = `
name: broker-sweep
run:
  ttis: 1600
  attach_ttis: 200
  seed: 11
master:
  stats_period_tti: 2
topology:
  enbs:
    - id: 1
      seed: 1
slices:
  elastic: true
  epoch_ttis: 100
  specs:
    - name: gold
      group: 0
      weight: 2
      min_throughput_kbps: 500
    - name: silver
      group: 1
      min_throughput_kbps: 1000000
    - name: joiner
      group: 2
      arrive_at: 600
      min_throughput_kbps: 500
      admit_above: 0.05
      reject_below: 0.01
    - name: hopeless
      group: 3
      arrive_at: 900
      min_throughput_kbps: 1000000000
      admit_above: 0.9
      reject_below: 0.5
ues:
  - count: 2
    enb: 1
    imsi_base: 100
    group: 0
    channel:
      model: fixed
      cqi: 11
    traffic:
      - kind: cbr
        rate_kbps: 300
  - count: 2
    enb: 1
    imsi_base: 200
    group: 1
    channel:
      model: fixed
      cqi: 11
    traffic:
      - kind: full_buffer
  - count: 1
    enb: 1
    imsi_base: 300
    group: 2
    channel:
      model: fixed
      cqi: 11
    traffic:
      - kind: cbr
        rate_kbps: 300
`

// TestBrokerDigestWorkerInvariance extends the determinism gate to the
// slice broker: its epoch loop runs on the master tick, so its
// admissions, plans and SLA accounting must be bit-identical for every
// worker-pool size — that is what lets elastic-slicing ship a golden.
func TestBrokerDigestWorkerInvariance(t *testing.T) {
	sc, err := Parse(brokerDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := sc.RunWorkers(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Summary.Digest != ref.Summary.Digest {
			t.Errorf("workers=%d digest %s != serial %s",
				workers, res.Summary.Digest, ref.Summary.Digest)
		}
	}
	sum := ref.Summary
	if sum.BrokerEpochs == 0 || sum.BrokerApplied == 0 {
		t.Fatalf("broker idle: epochs=%d applied=%d", sum.BrokerEpochs, sum.BrokerApplied)
	}
	want := map[string]string{
		"gold": "admitted", "silver": "admitted",
		"joiner": "admitted", "hopeless": "rejected",
	}
	if len(sum.SliceSLA) != len(want) {
		t.Fatalf("SliceSLA has %d entries, want %d: %+v", len(sum.SliceSLA), len(want), sum.SliceSLA)
	}
	for _, st := range sum.SliceSLA {
		if st.Decision.String() != want[st.Name] {
			t.Errorf("%s decision = %v, want %s", st.Name, st.Decision, want[st.Name])
		}
	}
	for _, st := range sum.SliceSLA {
		if st.Name == "silver" && !st.Violating {
			t.Error("silver not violating its unattainable floor")
		}
		if st.Name == "gold" && st.Violating {
			t.Error("gold violating despite an attainable floor")
		}
	}
}

// idleDoc is built to make the idle fast-forward engine earn its keep:
// a honeycomb of mostly-quiet cells whose master issues no periodic work
// (all periods 0, no resync), with traffic that is bursty or windowed so
// every eNodeB spends long stretches with nothing to do.
const idleDoc = `
name: idle-sweep
run:
  ttis: 3000
  attach_ttis: 300
  seed: 7
master:
  stats_period_tti: 0
  sync_period_tti: 0
  echo_period_tti: 0
  no_resync: true
topology:
  honeycomb:
    rings: 1
    pitch_m: 900
ues:
  - count: 2
    enb: 1
    imsi_base: 100
    channel:
      model: fixed
      cqi: 12
    traffic:
      - kind: cbr
        rate_kbps: 200
        start_tti: 500
        stop_tti: 900
  - count: 2
    enb: 3
    imsi_base: 300
    channel:
      model: fixed
      cqi: 9
    traffic:
      - kind: onoff
        rate_kbps: 150
        on_tti: 50
        off_tti: 950
    uplink:
      - kind: cbr
        rate_kbps: 32
        start_tti: 1200
        stop_tti: 1400
  - count: 1
    enb: 5
    imsi_base: 500
    channel:
      model: fixed
      cqi: 14
    traffic:
      - kind: poisson
        mean_kbps: 8
        seed: 3
`

// TestFastForwardDigestInvariance is the skip engine's correctness gate:
// for every worker-pool size, running with idle fast-forward enabled
// (the default) and disabled must produce bit-identical digests — the
// engine's contract is that skipping is unobservable.
func TestFastForwardDigestInvariance(t *testing.T) {
	sc, err := Parse(idleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var ref *Result
	for _, noFF := range []bool{false, true} {
		sc.Run.NoFastForward = noFF
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := sc.RunWorkers(workers)
			if err != nil {
				t.Fatalf("noFF=%v workers=%d: %v", noFF, workers, err)
			}
			if ref == nil {
				ref = res
				if res.Summary.Digest == "" {
					t.Fatal("empty digest")
				}
				continue
			}
			if res.Summary.Digest != ref.Summary.Digest {
				t.Errorf("noFF=%v workers=%d digest %s != reference %s",
					noFF, workers, res.Summary.Digest, ref.Summary.Digest)
			}
		}
	}
	if ref.Summary.Attached == 0 {
		t.Fatal("idle scenario attached no UEs; it no longer exercises anything")
	}
	if ref.Summary.DLDelivered == 0 {
		t.Fatal("idle scenario delivered no traffic")
	}
}

// TestRebuildReproduces guards the "Scenario is purely declarative"
// contract: building and running the same Scenario value twice must give
// the same digest (generators/channels are freshly constructed each time).
func TestRebuildReproduces(t *testing.T) {
	sc, err := Parse(sweepDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a, err := sc.RunWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.RunWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Digest != b.Summary.Digest {
		t.Fatalf("rebuild changed the digest: %s vs %s", a.Summary.Digest, b.Summary.Digest)
	}
}
