package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexran/internal/ue"
)

// minimalDoc is a valid single-eNodeB scenario the error table mutates.
const minimalDoc = `
name: t
run:
  ttis: 100
topology:
  enbs:
    - id: 1
ues:
  - count: 2
    enb: 1
    imsi_base: 100
    channel:
      model: fixed
      cqi: 10
    traffic:
      - kind: cbr
        rate_kbps: 100
`

func TestParseMinimal(t *testing.T) {
	sc, err := Parse(minimalDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sc.Name != "t" || sc.Run.TTIs != 100 || len(sc.ENBs) != 1 || len(sc.UEs) != 1 {
		t.Fatalf("unexpected parse result: %+v", sc)
	}
	if sc.Run.AttachTTIs != DefaultAttachTTIs {
		t.Fatalf("attach_ttis default = %d, want %d", sc.Run.AttachTTIs, DefaultAttachTTIs)
	}
	if sc.Master == nil || sc.Master.StatsPeriodTTI != 1 {
		t.Fatalf("master defaults not applied: %+v", sc.Master)
	}
}

// TestValidationErrors pins the exact error text of every declarative
// misconfiguration the parser guards against: the messages are the user
// interface of the scenario engine.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			name: "unknown top-level key",
			doc:  "name: t\nbogus: 1\nrun:\n  ttis: 10\n",
			want: `scenario: unknown top-level key "bogus"`,
		},
		{
			name: "missing name",
			doc:  "run:\n  ttis: 10\ntopology:\n  enbs:\n    - id: 1\n",
			want: "scenario: name is required",
		},
		{
			name: "missing run ttis",
			doc:  "name: t\ntopology:\n  enbs:\n    - id: 1\n",
			want: "scenario: run.ttis is required",
		},
		{
			name: "non-positive ttis",
			doc:  "name: t\nrun:\n  ttis: 0\n",
			want: "scenario: run.ttis must be a positive integer",
		},
		{
			name: "no eNodeBs",
			doc:  "name: t\nrun:\n  ttis: 10\n",
			want: "scenario: topology declares no eNodeBs",
		},
		{
			name: "unknown run knob",
			doc:  "name: t\nrun:\n  ttis: 10\n  warp_factor: 9\n",
			want: `scenario: run has no knob "warp_factor"`,
		},
		{
			name: "duplicate eNodeB id",
			doc:  "name: t\nrun:\n  ttis: 10\ntopology:\n  enbs:\n    - id: 1\n    - id: 1\n",
			want: "scenario: duplicate eNodeB id 1",
		},
		{
			name: "unknown app kind",
			doc: minimalDoc + `
apps:
  - kind: chaos-monkey
`,
			want: `scenario: apps[0]: unknown app kind "chaos-monkey"`,
		},
		{
			name: "traffic shares not summing to 1",
			doc: strings.Replace(minimalDoc, `    traffic:
      - kind: cbr
        rate_kbps: 100
`, `    traffic:
      - kind: cbr
        share: 0.5
        rate_kbps: 100
      - kind: full_buffer
        share: 0.4
`, 1),
			want: "scenario: ues[0].traffic: shares sum to 0.900, want 1.0",
		},
		{
			name: "unknown traffic kind",
			doc: strings.Replace(minimalDoc, "kind: cbr\n        rate_kbps: 100",
				"kind: torrent", 1),
			want: `scenario: ues[0].traffic[0]: unknown traffic kind "torrent"`,
		},
		{
			name: "fault beyond run length",
			doc: minimalDoc + `
faults:
  - at: 500
    kind: link_cut
    enb: 1
`,
			want: "scenario: faults[0]: at TTI 500 beyond run length 100",
		},
		{
			name: "fault on unknown eNodeB",
			doc: minimalDoc + `
faults:
  - at: 50
    kind: link_cut
    enb: 9
`,
			want: "scenario: faults[0].enb: unknown eNodeB 9",
		},
		{
			name: "unknown fault kind",
			doc: minimalDoc + `
faults:
  - at: 50
    kind: emp_blast
    enb: 1
`,
			want: `scenario: faults[0]: unknown fault kind "emp_blast"`,
		},
		{
			name: "UE group on unknown eNodeB",
			doc:  strings.Replace(minimalDoc, "enb: 1\n    imsi_base: 100", "enb: 7\n    imsi_base: 100", 1),
			want: "scenario: ues[0].enb: unknown eNodeB 7",
		},
		{
			name: "IMSI collision between groups",
			doc: minimalDoc + `  - count: 1
    enb: 1
    imsi_base: 101
    channel:
      model: fixed
      cqi: 5
    traffic:
      - kind: full_buffer
`,
			want: "scenario: ues[1]: IMSI 101 collides with another group",
		},
		{
			name: "unknown channel model",
			doc: strings.Replace(minimalDoc, "model: fixed\n      cqi: 10",
				"model: quantum", 1),
			want: `scenario: ues[0].channel.model: unknown channel model "quantum"`,
		},
		{
			name: "geo channel without radio map",
			doc: strings.Replace(minimalDoc, "model: fixed\n      cqi: 10",
				"model: geo", 1),
			want: "scenario: ues[0]: the geo channel model needs radio-map sites (power_dbm on eNodeBs)",
		},
		{
			name: "explicit geo channel on a siteless eNodeB",
			doc: strings.Replace(strings.Replace(minimalDoc,
				"    - id: 1", "    - id: 1\n    - id: 2\n      power_dbm: 43", 1),
				`    channel:
      model: fixed
      cqi: 10`, `    placement:
      at: [10, 10]
    channel:
      model: geo`, 1),
			want: "scenario: ues[0]: eNodeB 1 has no radio-map site for the geo channel",
		},
		{
			name: "auto channel on enb all with a siteless eNodeB",
			doc: strings.Replace(strings.Replace(minimalDoc,
				"    - id: 1", "    - id: 1\n    - id: 2\n      power_dbm: 43", 1),
				`    enb: 1
    imsi_base: 100
    channel:
      model: fixed
      cqi: 10`, `    enb: all
    imsi_base: 100
    placement:
      at: [10, 10]`, 1),
			want: "scenario: ues[0]: eNodeB 1 has no radio-map site for the geo channel",
		},
		{
			name: "moving UE on a fixed channel",
			doc: strings.Replace(minimalDoc, "    channel:", `    mobility:
      model: random_waypoint
      speed_mps: 10
    channel:`, 1),
			want: `scenario: ues[0]: a moving UE needs a geo channel, not "fixed"`,
		},
		{
			name: "unknown mobility model",
			doc: strings.Replace(minimalDoc, "    channel:", `    mobility:
      model: teleport
    channel:`, 1),
			want: `scenario: ues[0].mobility.model: unknown mobility model "teleport"`,
		},
		{
			name: "app without master",
			doc: minimalDoc + `master: none
apps:
  - kind: monitor
`,
			want: `scenario: apps[0]: apps need a master (remove "master: none")`,
		},
		{
			name: "slicing shares over 1",
			doc: minimalDoc + `slicing:
  - enb: 1
    shares: [0.8, 0.7]
`,
			want: "scenario: slicing[0].shares sum to 1.500, want <= 1.0",
		},
		{
			name: "slicing on unknown eNodeB",
			doc: minimalDoc + `slicing:
  - enb: 3
    shares: [0.5, 0.5]
`,
			want: "scenario: slicing[0].enb: unknown eNodeB 3",
		},
		{
			name: "ransharing without enb",
			doc: minimalDoc + `apps:
  - kind: ransharing
    plan:
      - at: 10
        shares: [0.5, 0.5]
`,
			want: "scenario: apps[0].enb is required for ransharing",
		},
		{
			name: "netem loss out of range",
			doc: strings.Replace(minimalDoc, "    - id: 1", `    - id: 1
      to_master:
        loss: 1.5`, 1),
			want: "scenario: topology.enbs[0].to_master.loss must be a probability in [0, 1]",
		},
		{
			name: "netem burst_loss out of range",
			doc: strings.Replace(minimalDoc, "    - id: 1", `    - id: 1
      to_master:
        burst_loss: 1.2`, 1),
			want: "scenario: topology.enbs[0].to_master.burst_loss must be a probability in [0, 1]",
		},
		{
			name: "netem stall_tti negative",
			doc: strings.Replace(minimalDoc, "    - id: 1", `    - id: 1
      to_agent:
        stall_tti: -5`, 1),
			want: "scenario: topology.enbs[0].to_agent.stall_tti must be a non-negative integer",
		},
		{
			name: "netem_set without a direction",
			doc: minimalDoc + `
faults:
  - at: 50
    kind: netem_set
    enb: 1
`,
			want: "scenario: faults[0]: netem_set needs a to_master or to_agent direction",
		},
		{
			name: "netem_set with a bad knob",
			doc: minimalDoc + `
faults:
  - at: 50
    kind: netem_set
    enb: 1
    to_agent:
      dup: 2
`,
			want: "scenario: faults[0].to_agent.dup must be a probability in [0, 1]",
		},
		{
			name: "agent_resume without a stall",
			doc: minimalDoc + `
faults:
  - at: 50
    kind: agent_resume
    enb: 1
`,
			want: "scenario: faults[0]: agent_resume for eNodeB 1 without a preceding agent_stall",
		},
		{
			name: "negative master health knob",
			doc: minimalDoc + `
master:
  health_period_tti: -1
`,
			want: "scenario: master.health_period_tti must be a non-negative integer",
		},
		{
			name: "cqi out of range",
			doc:  strings.Replace(minimalDoc, "cqi: 10", "cqi: 19", 1),
			want: "scenario: ues[0].channel.cqi must be a CQI in [1, 15]",
		},
		{
			name: "group without traffic",
			doc: strings.Replace(minimalDoc, `    traffic:
      - kind: cbr
        rate_kbps: 100
`, "", 1),
			want: "scenario: ues[0] declares no traffic",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.doc)
			if err == nil {
				t.Fatalf("Parse accepted invalid document")
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q\n      want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestTrafficMixAssignment checks the deterministic largest-prefix
// assignment of mix components to UE indices.
func TestTrafficMixAssignment(t *testing.T) {
	mix := []TrafficDecl{
		{Kind: "cbr", Share: 0.5, RateKbps: 100},
		{Kind: "full_buffer", Share: 0.3},
		{Kind: "onoff", Share: 0.2, RateKbps: 50, OnTTI: 10, OffTTI: 10},
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		switch buildGenerator(mix, 1, uint64(i), i, 10).(type) {
		case *ue.CBR:
			counts["cbr"]++
		case *ue.FullBuffer:
			counts["full_buffer"]++
		case *ue.OnOff:
			counts["onoff"]++
		default:
			counts["other"]++
		}
	}
	if counts["cbr"] != 5 || counts["full_buffer"] != 3 || counts["onoff"] != 2 {
		t.Fatalf("mix assignment = %v, want map[cbr:5 full_buffer:3 onoff:2]", counts)
	}
}

// TestScenarioFilesValidate parses every shipped scenario file: the
// library must never drift out of sync with the parser.
func TestScenarioFilesValidate(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no scenarios directory: %v", err)
	}
	seen := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		seen++
		if _, err := Load(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if seen == 0 {
		t.Fatal("scenarios directory holds no .yaml files")
	}
}
