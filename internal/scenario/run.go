package scenario

// This file executes a built Runtime and reduces the end state to a
// Summary plus a stable digest. The digest is a 64-bit FNV-1a over a
// canonical dump of everything deterministic about the run — per-UE final
// data-plane state, attach latencies, the handover log, lifecycle events
// and slice totals — and deliberately excludes the worker count, so one
// scenario must digest identically for every engine pool size. That
// invariant (guaranteed by the sharded TTI engine and enforced in CI by
// the scenario matrix) is what makes committed golden digests a
// regression gate over the whole sim/sched/mobility/resilience stack.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"flexran/internal/apps"
	"flexran/internal/controller"
	"flexran/internal/enb"
	"flexran/internal/lte"
	"flexran/internal/sim"
	"flexran/internal/slice"
)

// CellThroughput is the per-cell slice of the Summary, attributed by each
// UE's final serving cell (counters travel with the UE on handover).
type CellThroughput struct {
	ENB     lte.ENBID  `json:"enb"`
	Cell    lte.CellID `json:"cell"`
	UEs     int        `json:"ues"`
	DLBytes uint64     `json:"dl_bytes"`
	Mbps    float64    `json:"mbps"`
}

// SliceThroughput aggregates delivery per scheduling group (operator or
// tier under RAN sharing).
type SliceThroughput struct {
	Group   int     `json:"group"`
	UEs     int     `json:"ues"`
	DLBytes uint64  `json:"dl_bytes"`
	Mbps    float64 `json:"mbps"`
}

// Summary is the deterministic outcome of one scenario run.
type Summary struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	ENBs    int    `json:"enbs"`
	UEs     int    `json:"ues"`

	// Attach phase.
	AttachTTIs    int     `json:"attach_ttis"`
	Attached      int     `json:"attached"`
	AttachMeanTTI float64 `json:"attach_mean_tti"`
	AttachMaxTTI  int     `json:"attach_max_tti"`

	// Measured run.
	RunTTIs        int     `json:"run_ttis"`
	DLDelivered    uint64  `json:"dl_delivered_bytes"`
	ULDelivered    uint64  `json:"ul_delivered_bytes"`
	DLDropped      uint64  `json:"dl_dropped_bytes"`
	HARQRetx       uint64  `json:"harq_retx"`
	ThroughputMbps float64 `json:"throughput_mbps"`

	Cells  []CellThroughput  `json:"cells,omitempty"`
	Slices []SliceThroughput `json:"slices,omitempty"`

	// Mobility.
	Handovers int `json:"handovers"`
	PingPongs int `json:"ping_pongs"`

	// Resilience.
	FaultsInjected int              `json:"faults_injected"`
	AgentDowns     int              `json:"agent_downs"`
	AgentUps       int              `json:"agent_ups"`
	Lifecycle      []LifecycleEvent `json:"lifecycle,omitempty"`

	// Gray-failure health transitions (empty unless the master's health
	// monitor is enabled).
	AgentDegraded int           `json:"agent_degraded"`
	AgentRecovers int           `json:"agent_recovers"`
	Health        []HealthEvent `json:"health,omitempty"`

	// Elastic slice broker (all empty/zero unless the scenario declares a
	// slices: section, keeping legacy summaries and digests untouched).
	SliceSLA       []slice.Status `json:"slice_sla,omitempty"`
	BrokerEpochs   int            `json:"broker_epochs,omitempty"`
	BrokerApplied  int            `json:"broker_applied,omitempty"`
	BrokerDeferred int            `json:"broker_deferred,omitempty"`
	BrokerLost     int            `json:"broker_lost,omitempty"`

	// Digest is the stable end-state fingerprint (hex FNV-1a 64).
	Digest string `json:"digest"`
}

// Result is a finished run: the summary plus the live runtime for callers
// (examples, tests) that want to poke at the world afterwards.
type Result struct {
	Runtime *Runtime
	Summary Summary
}

// RunWorkers parses nothing and builds nothing twice: it is the one-call
// convenience — Build at the given pool size, execute, summarize.
func (sc *Scenario) RunWorkers(workers int) (*Result, error) {
	rt, err := sc.Build(workers)
	if err != nil {
		return nil, err
	}
	return rt.Execute()
}

// Execute runs the scenario to completion: attach phase, fault/ransharing
// arming, the measured run, then summary + digest.
func (rt *Runtime) Execute() (*Result, error) {
	sc := rt.Scenario
	s := rt.Sim

	// Attach phase: step until every UE connects or the budget runs out,
	// recording per-UE attach latencies (in TTIs from scenario start).
	attachTTI := make(map[uint64]int, len(rt.imsis))
	pending := append([]uint64(nil), rt.imsis...)
	attachTTIs := 0
	for tti := 0; tti < sc.Run.AttachTTIs && len(pending) > 0; tti++ {
		s.Step()
		attachTTIs++
		remaining := pending[:0]
		for _, imsi := range pending {
			if r, _, ok := s.ReportByIMSI(imsi); ok && r.State == enb.StateConnected {
				attachTTI[imsi] = attachTTIs
			} else {
				remaining = append(remaining, imsi)
			}
		}
		pending = remaining
	}

	// Arm the fault script and any ransharing plans relative to the end
	// of the attach phase.
	base := s.Now()
	var faults []sim.Fault
	for _, f := range sc.Faults {
		var kind sim.FaultKind
		switch f.Kind {
		case "link_cut":
			kind = sim.FaultLinkCut
		case "link_restore":
			kind = sim.FaultLinkRestore
		case "agent_restart":
			kind = sim.FaultAgentRestart
		case "netem_set":
			kind = sim.FaultNetemSet
		case "agent_stall":
			kind = sim.FaultAgentStall
		case "agent_resume":
			kind = sim.FaultAgentResume
		}
		fault := sim.Fault{At: base + lte.Subframe(f.At), Kind: kind, ENB: f.ENB}
		if f.ToMaster != nil {
			ne := netemOf(*f.ToMaster)
			fault.ToMaster = &ne
		}
		if f.ToAgent != nil {
			ne := netemOf(*f.ToAgent)
			fault.ToAgent = &ne
		}
		faults = append(faults, fault)
	}
	if len(faults) > 0 {
		s.InjectFaults(faults...)
	}
	for i, a := range rt.sharing {
		plan := make([]apps.ShareChange, len(a.Plan))
		for j, ch := range a.Plan {
			plan[j] = apps.ShareChange{At: base + lte.Subframe(ch.At), Shares: ch.Shares}
		}
		s.Master.Register(apps.NewRANSharing(a.ENB, plan), 1000+10*i)
	}
	if rt.Broker != nil {
		// Armed at the end of attach like share plans and retunes: every
		// arrive_at offset and epoch boundary counts from here.
		rt.Broker.Arm(base)
		s.Master.Register(rt.Broker, 1500)
	}
	for i, a := range rt.retunes {
		s.Master.Register(&retuneDriver{
			master: s.Master, at: base + lte.Subframe(a.RetuneAt), decl: a,
		}, 2000+10*i)
	}

	// Baseline the delivery counters so throughput covers the measured
	// run only (attach-phase traffic excluded).
	base0 := map[uint64]baseline{}
	for _, imsi := range rt.imsis {
		if r, _, ok := s.ReportByIMSI(imsi); ok {
			base0[imsi] = baseline{dl: r.DLDelivered, ul: r.ULDelivered, drop: r.DLDropped, harq: r.HARQRetx}
		}
	}

	s.Run(sc.Run.TTIs)

	return &Result{Runtime: rt, Summary: rt.summarize(attachTTI, attachTTIs, base0)}, nil
}

// retuneDriver swaps the mobility manager's target policy mid-run through
// the registry's Retune path — the same mechanism a live operator uses —
// so scenario goldens cover runtime reconfiguration. The swap is queued on
// the tick that reaches the deadline and applied at the start of the next
// application slot, which keeps it deterministic for every worker count.
type retuneDriver struct {
	master *controller.Master
	at     lte.Subframe
	decl   AppDecl
	done   bool
}

func (d *retuneDriver) Name() string { return "scn-retune" }

func (d *retuneDriver) OnTick(ctx *controller.Context, now lte.Subframe) {
	if d.done || now < d.at {
		return
	}
	d.done = true
	decl := d.decl
	_ = d.master.Retune("mobility-manager", func(a controller.App) {
		mm, ok := a.(*apps.MobilityManager)
		if !ok {
			return
		}
		if decl.RetunePolicy == "load_balanced" {
			mm.Policy = apps.LoadBalanced{LoadWeight: decl.RetuneLoadWeight}
		} else {
			mm.Policy = apps.StrongestNeighbor{}
		}
	})
}

type ueFinal struct {
	imsi   uint64
	enb    lte.ENBID
	report enb.UEReport
	found  bool
}

// baseline snapshots one UE's cumulative counters at the end of attach.
type baseline struct {
	dl, ul, drop uint64
	harq         uint32
}

func (rt *Runtime) summarize(attachTTI map[uint64]int, attachTTIs int, base0 map[uint64]baseline) Summary {
	sc := rt.Scenario
	s := rt.Sim

	sum := Summary{
		Name:       sc.Name,
		Workers:    s.Workers(),
		ENBs:       len(sc.ENBs),
		UEs:        len(rt.imsis),
		AttachTTIs: attachTTIs,
		RunTTIs:    sc.Run.TTIs,
	}

	// Per-UE final state, IMSI-ordered.
	finals := make([]ueFinal, 0, len(rt.imsis))
	for _, imsi := range rt.imsis {
		r, id, ok := s.ReportByIMSI(imsi)
		finals = append(finals, ueFinal{imsi: imsi, enb: id, report: r, found: ok})
	}

	// Attach statistics.
	var attachSum, attachMax int
	for _, imsi := range rt.imsis {
		if t, ok := attachTTI[imsi]; ok {
			sum.Attached++
			attachSum += t
			if t > attachMax {
				attachMax = t
			}
		}
	}
	if sum.Attached > 0 {
		sum.AttachMeanTTI = float64(attachSum) / float64(sum.Attached)
		sum.AttachMaxTTI = attachMax
	}

	// Delivery totals and per-cell/per-slice attribution over the
	// measured run (baselined after attach).
	secs := float64(sc.Run.TTIs) / lte.TTIsPerSecond
	cellAgg := map[[2]uint64]*CellThroughput{}
	sliceAgg := map[int]*SliceThroughput{}
	for _, f := range finals {
		if !f.found {
			continue
		}
		b := base0[f.imsi]
		dl := f.report.DLDelivered - b.dl
		sum.DLDelivered += dl
		sum.ULDelivered += f.report.ULDelivered - b.ul
		sum.DLDropped += f.report.DLDropped - b.drop
		sum.HARQRetx += uint64(f.report.HARQRetx - b.harq)

		ck := [2]uint64{uint64(f.enb), uint64(f.report.Cell)}
		ct := cellAgg[ck]
		if ct == nil {
			ct = &CellThroughput{ENB: f.enb, Cell: f.report.Cell}
			cellAgg[ck] = ct
		}
		ct.UEs++
		ct.DLBytes += dl

		st := sliceAgg[rt.groups[f.imsi]]
		if st == nil {
			st = &SliceThroughput{Group: rt.groups[f.imsi]}
			sliceAgg[rt.groups[f.imsi]] = st
		}
		st.UEs++
		st.DLBytes += dl
	}
	if secs > 0 {
		sum.ThroughputMbps = float64(sum.DLDelivered) * 8 / 1e6 / secs
	}
	for _, ct := range cellAgg {
		if secs > 0 {
			ct.Mbps = float64(ct.DLBytes) * 8 / 1e6 / secs
		}
		sum.Cells = append(sum.Cells, *ct)
	}
	sort.Slice(sum.Cells, func(i, j int) bool {
		if sum.Cells[i].ENB != sum.Cells[j].ENB {
			return sum.Cells[i].ENB < sum.Cells[j].ENB
		}
		return sum.Cells[i].Cell < sum.Cells[j].Cell
	})
	for _, st := range sliceAgg {
		if secs > 0 {
			st.Mbps = float64(st.DLBytes) * 8 / 1e6 / secs
		}
		sum.Slices = append(sum.Slices, *st)
	}
	sort.Slice(sum.Slices, func(i, j int) bool { return sum.Slices[i].Group < sum.Slices[j].Group })

	// Mobility: handover and ping-pong counts from the execution log. A
	// ping-pong is a UE returning to the eNodeB it just left within the
	// configured window.
	hos := s.Handovers()
	sum.Handovers = len(hos)
	window := lte.Subframe(sc.Run.PingPongWindowTTI)
	lastHO := map[uint64]sim.HandoverRecord{}
	for _, h := range hos {
		if prev, ok := lastHO[h.IMSI]; ok && h.To == prev.From && h.SF-prev.SF <= window {
			sum.PingPongs++
		}
		lastHO[h.IMSI] = h
	}

	// Resilience.
	sum.FaultsInjected = len(sc.Faults)
	if rt.lifecycle != nil {
		sum.Lifecycle = append(sum.Lifecycle, rt.lifecycle.events...)
		for _, ev := range rt.lifecycle.events {
			if ev.Up {
				sum.AgentUps++
			} else {
				sum.AgentDowns++
			}
		}
		sum.Health = append(sum.Health, rt.lifecycle.health...)
		for _, ev := range rt.lifecycle.health {
			if ev.State == 0 {
				sum.AgentRecovers++
			} else {
				sum.AgentDegraded++
			}
		}
	}

	// Slice broker outcome.
	if rt.Broker != nil {
		sum.SliceSLA = rt.Broker.Statuses()
		sum.BrokerEpochs = rt.Broker.Epochs
		sum.BrokerApplied = rt.Broker.Applied
		sum.BrokerDeferred = rt.Broker.Deferred
		sum.BrokerLost = rt.Broker.Lost
	}

	sum.Digest = rt.digest(&sum, finals, attachTTI, hos)
	return sum
}

// digest folds the canonical end state into a hex FNV-1a 64 fingerprint.
// Everything written here is bit-for-bit reproducible for any worker
// count; the worker count itself (and derived wall-clock noise) is
// excluded by construction.
func (rt *Runtime) digest(sum *Summary, finals []ueFinal, attachTTI map[uint64]int, hos []sim.HandoverRecord) string {
	h := fnv.New64a()
	w := func(format string, args ...interface{}) { fmt.Fprintf(h, format, args...) }

	sc := rt.Scenario
	w("scenario %s seed %d ttis %d attach %d\n", sc.Name, sc.Run.Seed, sc.Run.TTIs, sum.AttachTTIs)
	for _, f := range finals {
		if !f.found {
			w("ue %d gone\n", f.imsi)
			continue
		}
		r := f.report
		w("ue %d enb %d cell %d state %d cqi %d att %d q %d %d %d dl %d ul %d drop %d harq %d avg %x %x sched %d\n",
			f.imsi, f.enb, r.Cell, r.State, r.CQI, attachTTI[f.imsi],
			r.DLQueue, r.ULQueue, r.SigQueue,
			r.DLDelivered, r.ULDelivered, r.DLDropped, r.HARQRetx,
			math.Float64bits(r.AvgDLKbps), math.Float64bits(r.AvgULKbps), r.LastSched)
	}
	for _, ho := range hos {
		w("ho %d %d->%d rnti %d->%d sf %d\n", ho.IMSI, ho.From, ho.To, ho.FromRNTI, ho.ToRNTI, ho.SF)
	}
	for _, ev := range sum.Lifecycle {
		w("life %d enb %d up %v\n", ev.Cycle, ev.ENB, ev.Up)
	}
	for _, ev := range sum.Health {
		w("health %d enb %d state %d\n", ev.Cycle, ev.ENB, ev.State)
	}
	for _, st := range sum.Slices {
		w("slice %d ues %d dl %d\n", st.Group, st.UEs, st.DLBytes)
	}
	if rt.Broker != nil {
		w("broker epochs %d applied %d deferred %d lost %d\n",
			sum.BrokerEpochs, sum.BrokerApplied, sum.BrokerDeferred, sum.BrokerLost)
		for _, st := range sum.SliceSLA {
			w("slicesla %s group %d dec %d share %x ues %d tput %x q %x att %x proj %x viol %v %d of %d\n",
				st.Name, st.Group, int(st.Decision), math.Float64bits(st.Share), st.UEs,
				math.Float64bits(st.ThroughputKbps), math.Float64bits(st.QueueMs),
				math.Float64bits(st.Attainment), math.Float64bits(st.Projected),
				st.Violating, st.ViolationEpochs, st.Epochs)
		}
	}
	w("pingpong %d\n", sum.PingPongs)
	return fmt.Sprintf("%016x", h.Sum64())
}
