package scenario

// This file turns a validated Scenario into a running world: sim.ENBSpecs
// with per-UE channels, mobility and traffic generators, a master with the
// declared northbound applications, agent-side slicing schedulers and
// policy documents, and the scripted fault timeline. All randomness is
// seeded from the declaration (run.seed mixed with per-group seeds and UE
// indices), so two Builds of one Scenario produce bit-for-bit identical
// worlds — the property the golden digests in scenarios/ rely on.

import (
	"fmt"
	"math/rand"

	"flexran/internal/agent"
	"flexran/internal/apps"
	"flexran/internal/apps/broker"
	"flexran/internal/controller"
	"flexran/internal/enb"
	"flexran/internal/lte"
	"flexran/internal/protocol"
	"flexran/internal/radio"
	"flexran/internal/sched"
	"flexran/internal/sim"
	"flexran/internal/transport"
	"flexran/internal/ue"
	"flexran/internal/yamlite"
)

// LifecycleEvent is one AgentUp/AgentDown dispatch observed by the
// engine's built-in lifecycle recorder.
type LifecycleEvent struct {
	Cycle lte.Subframe `json:"cycle"`
	ENB   lte.ENBID    `json:"enb"`
	Up    bool         `json:"up"`
}

// HealthEvent is one health-monitor transition observed by the engine's
// built-in recorder. State 0 (Healthy) records a recovery; anything else
// a downgrade to that state.
type HealthEvent struct {
	Cycle lte.Subframe `json:"cycle"`
	ENB   lte.ENBID    `json:"enb"`
	State int          `json:"state"`
}

// lifecycleLog records liveness and health transitions for the Summary
// and digest.
type lifecycleLog struct {
	events []LifecycleEvent
	health []HealthEvent
}

func (*lifecycleLog) Name() string { return "scenario-lifecycle" }

func (l *lifecycleLog) OnAgentUp(ctx *controller.Context, id lte.ENBID) {
	l.events = append(l.events, LifecycleEvent{Cycle: ctx.Now, ENB: id, Up: true})
}

func (l *lifecycleLog) OnAgentDown(ctx *controller.Context, id lte.ENBID) {
	l.events = append(l.events, LifecycleEvent{Cycle: ctx.Now, ENB: id, Up: false})
}

func (l *lifecycleLog) OnAgentDegraded(ctx *controller.Context, id lte.ENBID, state controller.HealthState) {
	l.health = append(l.health, HealthEvent{Cycle: ctx.Now, ENB: id, State: int(state)})
}

func (l *lifecycleLog) OnAgentRecovered(ctx *controller.Context, id lte.ENBID) {
	l.health = append(l.health, HealthEvent{Cycle: ctx.Now, ENB: id, State: int(controller.Healthy)})
}

// activityProbe feeds an InterferenceSwitched channel from another
// eNodeB's per-subframe transmission activity. It always looks one TTI
// back: the previous data-plane phase completed behind a barrier, so the
// read is deterministic for every worker-pool size (a same-subframe read
// would depend on eNodeB step order).
type activityProbe struct {
	enb        *enb.ENB // bound after sim construction
	cell       lte.CellID
	pendingENB lte.ENBID // the interferer to bind to
}

func (p *activityProbe) interfered(sf lte.Subframe) bool {
	return p.enb != nil && sf > 0 && p.enb.Active(p.cell, sf-1)
}

// Runtime is one built instance of a Scenario, ready to Run. Build fresh
// runtimes for every run; generators and channels are stateful.
type Runtime struct {
	Scenario *Scenario
	Sim      *sim.Sim
	Workers  int

	// The declared applications, nil when absent.
	Monitor  *apps.Monitor
	Mobility *apps.MobilityManager
	EICIC    *apps.EICIC
	// Broker is the elastic slice broker of the slices: section; built
	// here, registered and armed when the measured run starts.
	Broker *broker.Broker

	lifecycle *lifecycleLog
	imsis     []uint64 // every UE, ascending
	groups    map[uint64]int
	sharing   []AppDecl // ransharing apps, registered at run start
	retunes   []AppDecl // mobility retunes, armed at run start
}

// Build wires the scenario. workersOverride > 0 replaces run.workers.
func (sc *Scenario) Build(workersOverride int) (*Runtime, error) {
	workers := sc.Run.Workers
	if workersOverride > 0 {
		workers = workersOverride
	}

	rmap, hasMap := sc.buildRadioMap()

	rt := &Runtime{Scenario: sc, Workers: workers, groups: map[uint64]int{}}
	var probes []*activityProbe

	specs := make([]sim.ENBSpec, len(sc.ENBs))
	index := map[lte.ENBID]int{}
	for i := range sc.ENBs {
		d := &sc.ENBs[i]
		cells := make([]protocol.CellConfig, d.Cells)
		for c := range cells {
			cells[c] = enb.DefaultCell(lte.CellID(c))
		}
		specs[i] = sim.ENBSpec{
			ID:       d.ID,
			Cells:    cells,
			Seed:     d.Seed,
			Agent:    d.Agent,
			ToMaster: netemOf(d.ToMaster),
			ToAgent:  netemOf(d.ToAgent),
		}
		index[d.ID] = i
	}

	for gi := range sc.UEs {
		g := &sc.UEs[gi]
		targets := []lte.ENBID{g.ENB}
		if g.AllENBs {
			targets = targets[:0]
			for i := range sc.ENBs {
				targets = append(targets, sc.ENBs[i].ID)
			}
		}
		positions := g.positions(sc.Run.Seed, len(targets)*g.Count)
		for ti, target := range targets {
			for k := 0; k < g.Count; k++ {
				idx := ti*g.Count + k
				imsi := g.IMSIBase + uint64(idx)
				ch, probe, err := g.buildChannel(sc, rmap, hasMap, target, positions, idx)
				if err != nil {
					return nil, err
				}
				if probe != nil {
					probes = append(probes, probe)
				}
				spec := sim.UESpec{
					IMSI:    imsi,
					Cell:    g.Cell,
					Channel: ch,
					Group:   g.Group,
					DL:      buildGenerator(g.DL, sc.Run.Seed, imsi, idx, len(targets)*g.Count),
					UL:      buildGenerator(g.UL, sc.Run.Seed, imsi, idx, len(targets)*g.Count),
				}
				si := index[target]
				specs[si].UEs = append(specs[si].UEs, spec)
				rt.imsis = append(rt.imsis, imsi)
				rt.groups[imsi] = g.Group
			}
		}
	}

	cfg := sim.Config{Workers: workers, NoFastForward: sc.Run.NoFastForward}
	if sc.Master != nil {
		mo := controller.DefaultOptions()
		mo.StatsPeriodTTI = sc.Master.StatsPeriodTTI
		mo.SyncPeriodTTI = sc.Master.SyncPeriodTTI
		mo.EchoPeriodTTI = sc.Master.EchoPeriodTTI
		mo.EchoMissBudget = sc.Master.EchoMissBudget
		mo.NoResync = sc.Master.NoResync
		mo.Workers = sc.Master.Workers
		mo.HealthPeriodTTI = sc.Master.HealthPeriodTTI
		mo.HealthSuspectTTI = sc.Master.HealthSuspectTTI
		mo.HealthDegradedTTI = sc.Master.HealthDegradedTTI
		mo.HealthRecoverTTI = sc.Master.HealthRecoverTTI
		mo.CmdRetryTTI = sc.Master.CmdRetryTTI
		mo.CmdRetryBudget = sc.Master.CmdRetryBudget
		cfg.Master = &mo
	}
	s, err := sim.New(cfg, specs...)
	if err != nil {
		return nil, fmt.Errorf("scenario: building sim: %w", err)
	}
	rt.Sim = s

	// Late-bind the interference probes now that the eNodeBs exist.
	for _, p := range probes {
		if n := rt.nodeOf(p.pendingENB); n != nil {
			p.enb = n.ENB
		}
	}

	if err := rt.applyAgentConfig(); err != nil {
		return nil, err
	}
	if err := rt.registerApps(); err != nil {
		return nil, err
	}
	return rt, nil
}

// netemOf converts a declaration into the transport knob.
func netemOf(d NetemDecl) transport.Netem {
	return transport.Netem{
		OneWayTTI:      d.DelayTTI,
		JitterTTI:      d.JitterTTI,
		LossProb:       d.Loss,
		Seed:           d.Seed,
		BurstLossProb:  d.BurstLoss,
		BurstEnterProb: d.BurstEnter,
		BurstExitProb:  d.BurstExit,
		DupProb:        d.Dup,
		ReorderProb:    d.Reorder,
		ReorderTTI:     d.ReorderTTI,
		CorruptProb:    d.Corrupt,
		StallTTI:       d.StallTTI,
	}
}

// buildRadioMap assembles the shared site directory (one site per cell of
// every placed eNodeB).
func (sc *Scenario) buildRadioMap() (*radio.Map, bool) {
	var sites []radio.Site
	for i := range sc.ENBs {
		d := &sc.ENBs[i]
		if !d.HasSite {
			continue
		}
		for c := 0; c < d.Cells; c++ {
			sites = append(sites, radio.Site{
				ENB:  d.ID,
				Cell: lte.CellID(c),
				Tx:   radio.Transmitter{Pos: radio.Point{X: d.X, Y: d.Y}, PowerDBm: d.PowerDBm},
			})
		}
	}
	if len(sites) == 0 {
		return nil, false
	}
	return radio.NewMap(sites...), true
}

// positions materializes the group's placement for n UEs.
func (g *UEGroup) positions(runSeed int64, n int) []radio.Point {
	out := make([]radio.Point, n)
	p := g.Place
	if p == nil {
		return out
	}
	switch p.Kind {
	case "at":
		for i := range out {
			out[i] = radio.Point{X: p.At.X, Y: p.At.Y}
		}
	case "line":
		for i := range out {
			t := 0.0
			if n > 1 {
				t = float64(i) / float64(n-1)
			}
			out[i] = radio.Point{
				X: p.From.X + t*(p.To.X-p.From.X),
				Y: p.From.Y + t*(p.To.Y-p.From.Y),
			}
		}
	case "box":
		rnd := rand.New(rand.NewSource(mix(runSeed, p.Seed, int64(n))))
		for i := range out {
			out[i] = radio.Point{
				X: p.Min.X + rnd.Float64()*(p.Max.X-p.Min.X),
				Y: p.Min.Y + rnd.Float64()*(p.Max.Y-p.Min.Y),
			}
		}
	}
	return out
}

// buildMobility constructs the motion model of UE idx within the group.
func (g *UEGroup) buildMobility(runSeed int64, positions []radio.Point, idx int) radio.Mobility {
	m := g.Mobility
	if m == nil {
		return radio.Static(positions[idx])
	}
	switch m.Model {
	case "waypoint":
		path := make([]radio.Point, len(m.Path))
		for i, pt := range m.Path {
			path[i] = radio.Point{X: pt.X, Y: pt.Y}
		}
		return &radio.Waypoint{
			Path:     path,
			SpeedMps: m.SpeedMps + m.SpeedStepMps*float64(idx),
			PingPong: m.PingPong,
		}
	case "random_waypoint":
		return &radio.RandomWaypoint{
			Min:      radio.Point{X: m.Min.X, Y: m.Min.Y},
			Max:      radio.Point{X: m.Max.X, Y: m.Max.Y},
			SpeedMps: m.SpeedMps + m.SpeedStepMps*float64(idx),
			Seed:     mix(runSeed, m.Seed, int64(idx)),
		}
	default: // "static"
		return radio.Static(positions[idx])
	}
}

// buildChannel constructs the channel model of UE idx, returning an
// activity probe to late-bind when the model couples to another eNodeB.
func (g *UEGroup) buildChannel(sc *Scenario, rmap *radio.Map, hasMap bool, serving lte.ENBID, positions []radio.Point, idx int) (radio.Model, *activityProbe, error) {
	c := g.Channel
	model := c.Model
	if model == "" || model == "auto" {
		if hasMap {
			model = "geo"
		} else {
			model = "fixed"
			if c.CQI == 0 {
				c.CQI = 10
			}
		}
	}
	switch model {
	case "geo":
		return radio.NewGeoChannel(rmap, g.buildMobility(sc.Run.Seed, positions, idx), serving), nil, nil
	case "fixed":
		return radio.Fixed(lte.CQI(c.CQI)), nil, nil
	case "fading":
		return radio.NewGaussMarkov(c.Mean, c.Rho, c.Sigma, mix(sc.Run.Seed, c.Seed, int64(idx))), nil, nil
	case "squarewave":
		total := lte.Subframe(sc.Run.TTIs + sc.Run.AttachTTIs)
		return radio.NewSquareWave(lte.CQI(c.A), lte.CQI(c.B), lte.Subframe(c.HalfPeriodTTI), total), nil, nil
	case "interference_switched":
		probe := &activityProbe{cell: c.InterfererCell, pendingENB: c.InterfererENB}
		return &radio.InterferenceSwitched{
			Clear:      lte.CQI(c.Clear),
			Hit:        lte.CQI(c.Hit),
			Interfered: probe.interfered,
		}, probe, nil
	}
	return nil, nil, fmt.Errorf("scenario: unknown channel model %q", model)
}

// buildGenerator instantiates one UE's traffic source from the group mix.
// UE idx draws the component whose cumulative share interval covers its
// index — a deterministic largest-prefix assignment, so a 0.5/0.5 mix of
// 10 UEs yields exactly 5 of each.
func buildGenerator(mix []TrafficDecl, runSeed int64, imsi uint64, idx, n int) ue.Generator {
	if len(mix) == 0 {
		return nil
	}
	cum := 0.0
	choice := mix[len(mix)-1]
	for _, d := range mix {
		cum += d.Share
		if float64(idx) < cum*float64(n)-1e-9 {
			choice = d
			break
		}
	}
	switch choice.Kind {
	case "cbr":
		return &ue.CBR{
			RateKbps: choice.RateKbps,
			Start:    lte.Subframe(choice.StartTTI),
			Stop:     lte.Subframe(choice.StopTTI),
		}
	case "poisson":
		return &ue.Poisson{
			MeanKbps:    choice.MeanKbps,
			PacketBytes: choice.PacketBytes,
			Seed:        mix64(runSeed, choice.Seed, int64(imsi)),
		}
	case "onoff":
		return &ue.OnOff{
			RateKbps: choice.RateKbps,
			OnTTI:    choice.OnTTI,
			OffTTI:   choice.OffTTI,
		}
	case "full_buffer":
		return ue.NewFullBuffer()
	}
	return nil
}

// applyAgentConfig installs slicing schedulers and per-eNodeB policy
// documents on the freshly built agents (before any subframe runs).
func (rt *Runtime) applyAgentConfig() error {
	sc := rt.Scenario
	for _, d := range sc.Slices {
		for ni, n := range rt.Sim.Nodes {
			if n.Agent == nil {
				continue
			}
			if !d.All && sc.enbIDAt(ni) != d.ENB {
				continue
			}
			inner := func() sched.Scheduler { return sched.NewRoundRobin() }
			if d.Scheduler == "pf" {
				inner = func() sched.Scheduler { return sched.NewProportionalFair() }
			}
			sl := sched.NewSlicer("scn-slice", d.Shares, d.WorkConserving, inner)
			mac := n.Agent.MAC()
			if err := mac.InstallLocal(agent.OpDLUESched, "scn-slice", sl); err != nil {
				return fmt.Errorf("scenario: installing slicer on eNodeB %d: %w", sc.enbIDAt(ni), err)
			}
			if err := mac.Activate(agent.OpDLUESched, "scn-slice"); err != nil {
				return fmt.Errorf("scenario: activating slicer on eNodeB %d: %w", sc.enbIDAt(ni), err)
			}
		}
	}
	if b := sc.Broker; b != nil {
		// The broker's slicer goes on every agent, initial shares split
		// weight-proportionally between the founding specs (later arrivals
		// start starved until admitted).
		shares := b.initialShares()
		inner := func() sched.Scheduler { return sched.NewRoundRobin() }
		if b.Scheduler == "pf" {
			inner = func() sched.Scheduler { return sched.NewProportionalFair() }
		}
		for ni, n := range rt.Sim.Nodes {
			if n.Agent == nil {
				continue
			}
			sl := sched.NewSlicer("scn-slice", shares, b.WorkConserving, inner)
			mac := n.Agent.MAC()
			if err := mac.InstallLocal(agent.OpDLUESched, "scn-slice", sl); err != nil {
				return fmt.Errorf("scenario: installing broker slicer on eNodeB %d: %w", sc.enbIDAt(ni), err)
			}
			if err := mac.Activate(agent.OpDLUESched, "scn-slice"); err != nil {
				return fmt.Errorf("scenario: activating broker slicer on eNodeB %d: %w", sc.enbIDAt(ni), err)
			}
		}
	}
	for i := range sc.ENBs {
		d := &sc.ENBs[i]
		if d.Policy == nil {
			continue
		}
		n := rt.Sim.Nodes[i]
		if n.Agent == nil {
			return fmt.Errorf("scenario: eNodeB %d has a policy but no agent", d.ID)
		}
		if err := n.Agent.Reconfigure(yamlite.Marshal(d.Policy)); err != nil {
			return fmt.Errorf("scenario: applying policy to eNodeB %d: %w", d.ID, err)
		}
	}
	return nil
}

// enbIDAt maps a node index back to the declared id (ENBs are sorted by
// id during validation, matching sim.New's node order).
func (sc *Scenario) enbIDAt(i int) lte.ENBID { return sc.ENBs[i].ID }

// nodeOf finds the runtime node of an eNodeB id.
func (rt *Runtime) nodeOf(id lte.ENBID) *sim.Node {
	for i := range rt.Scenario.ENBs {
		if rt.Scenario.ENBs[i].ID == id {
			return rt.Sim.Nodes[i]
		}
	}
	return nil
}

// registerApps wires the declared northbound applications. The lifecycle
// recorder always registers first (priority 1) so the Summary sees every
// AgentUp/AgentDown; declared apps follow in document order at priorities
// 10, 20, ... — a deterministic dispatch order.
func (rt *Runtime) registerApps() error {
	if rt.Sim.Master == nil {
		return nil
	}
	rt.lifecycle = &lifecycleLog{}
	rt.Sim.Master.Register(rt.lifecycle, 1)
	for i, a := range rt.Scenario.Apps {
		prio := 10 * (i + 1)
		switch a.Kind {
		case "monitor":
			m := apps.NewMonitor(a.PeriodTTI)
			rt.Sim.Master.Register(m, prio)
			rt.Monitor = m
		case "mobility":
			mm := apps.NewMobilityManager()
			mm.CommandTimeoutTTI = a.CommandTimeoutTTI
			mm.MinMarginDB = a.MinMarginDB
			if a.Policy == "load_balanced" {
				mm.Policy = apps.LoadBalanced{LoadWeight: a.LoadWeight}
			}
			rt.Sim.Master.Register(mm, prio)
			rt.Mobility = mm
			if a.RetuneAt > 0 {
				// Armed when the measured run starts: retune_at is an
				// offset from the end of the attach phase.
				rt.retunes = append(rt.retunes, a)
			}
		case "eicic":
			if err := rt.wireEICIC(a, prio); err != nil {
				return err
			}
		case "ransharing":
			// Registered when the measured run starts: the plan's TTIs
			// are offsets from the end of the attach phase.
			rt.sharing = append(rt.sharing, a)
		}
	}
	if b := rt.Scenario.Broker; b != nil {
		bk, err := broker.New(broker.Config{
			EpochTTI:         b.EpochTTIs,
			Elastic:          b.Elastic,
			DegradeFactor:    b.DegradeFactor,
			HysteresisEpochs: b.HysteresisEpochs,
		}, b.Specs...)
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		rt.Broker = bk
	}
	return nil
}

// initialShares is the agent-side share vector in force before the
// broker's first epoch: weight-proportional between the founding
// (arrive_at 0) specs, zero for groups that arrive later.
func (d *SlicesDecl) initialShares() []float64 {
	maxGroup, totW := 0, 0.0
	for i := range d.Specs {
		sp := &d.Specs[i]
		if sp.Group > maxGroup {
			maxGroup = sp.Group
		}
		if sp.ArriveAt == 0 {
			totW += sp.EffectiveWeight()
		}
	}
	shares := make([]float64, maxGroup+1)
	if totW <= 0 {
		return shares
	}
	for i := range d.Specs {
		sp := &d.Specs[i]
		if sp.ArriveAt == 0 {
			shares[sp.Group] = sp.EffectiveWeight() / totW
		}
	}
	return shares
}

// wireEICIC reproduces the §6.1 split of control declaratively: the macro
// agent runs an ABS switch (local scheduler outside ABS, coordinator
// grants during ABS when optimized), small cells batch their victims into
// ABS subframes, and the coordinator app re-grants unneeded ABS capacity.
func (rt *Runtime) wireEICIC(a AppDecl, prio int) error {
	abs := sched.ABSPattern(a.ABS)
	macro := rt.nodeOf(a.MacroENB)
	if macro == nil || macro.Agent == nil {
		return fmt.Errorf("scenario: eicic macro eNodeB %d has no agent", a.MacroENB)
	}
	macroMAC := macro.Agent.MAC()
	var during sched.Scheduler
	if a.Optimized {
		during = macroMAC.RemoteStub(agent.OpDLUESched)
	}
	macroSwitch := sched.NewABSSwitch("scn-eicic-macro", abs, sched.NewRoundRobin(), during)
	if err := macroMAC.InstallLocal(agent.OpDLUESched, "scn-eicic-macro", macroSwitch); err != nil {
		return fmt.Errorf("scenario: eicic macro install: %w", err)
	}
	if err := macroMAC.Activate(agent.OpDLUESched, "scn-eicic-macro"); err != nil {
		return fmt.Errorf("scenario: eicic macro activate: %w", err)
	}
	for _, id := range a.SmallENBs {
		small := rt.nodeOf(id)
		if small == nil || small.Agent == nil {
			return fmt.Errorf("scenario: eicic small eNodeB %d has no agent", id)
		}
		batch := sched.NewMetric("scn-batch-rr", func(in sched.Input, u sched.UEInfo) float64 {
			if u.QueueBytes >= 2000 || in.SF-u.LastSched > 12 {
				return float64(u.QueueBytes)
			}
			return -1
		})
		gate := sched.NewABSGate("scn-eicic-small", abs, batch)
		mac := small.Agent.MAC()
		if err := mac.InstallLocal(agent.OpDLUESched, "scn-eicic-small", gate); err != nil {
			return fmt.Errorf("scenario: eicic small install: %w", err)
		}
		if err := mac.Activate(agent.OpDLUESched, "scn-eicic-small"); err != nil {
			return fmt.Errorf("scenario: eicic small activate: %w", err)
		}
	}
	coord := apps.NewEICIC(a.MacroENB, a.SmallENBs, a.ABS, a.Optimized)
	rt.Sim.Master.Register(coord, prio)
	rt.EICIC = coord
	return nil
}

// mix derives a deterministic sub-seed from (run seed, declared seed,
// index) with a SplitMix64-style avalanche, so adjacent indices land far
// apart in generator state space.
func mix(runSeed, declSeed, idx int64) int64 {
	return mix64(runSeed, declSeed, idx)
}

func mix64(a, b, c int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xBF58476D1CE4E5B9 + uint64(c) + 1
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
