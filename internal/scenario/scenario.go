// Package scenario is the declarative workload layer of the platform: it
// turns a yamlite document — topology, UE population, traffic mix, apps,
// slicing shares and a fault script — into a fully wired sim.Sim with a
// master controller and northbound applications, runs it, and reduces the
// end state to a deterministic Summary plus a stable FNV-1a digest.
//
// The paper's pitch is programmability: one platform, many RAN control
// scenarios. Before this package every workload was a hand-coded Go main;
// with it a scenario is data. The digest is the regression currency: the
// TTI engine guarantees bit-for-bit identical worlds for every worker-pool
// size, so each scenario file ships with a golden digest and any
// behavioural drift in sim/sched/mobility/resilience code shows up as a
// digest mismatch in CI — no new Go test required.
//
// Document layout (all sections except run/topology are optional):
//
//	name: highway-pingpong
//	description: walkers bouncing between two cells
//	run:
//	  ttis: 20000          # TTIs after the attach phase
//	  attach_ttis: 2000    # attach-phase budget
//	  seed: 1              # base seed mixed into derived seeds
//	  workers: 0           # engine pool size (CLI -workers overrides)
//	topology:
//	  enbs:
//	    - id: 1
//	      x: 0             # with power_dbm, adds a radio-map site
//	      power_dbm: 43
//	  # or generated: grid: {enbs: 256} / honeycomb: {rings: 3, pitch_m: 500}
//	ues:
//	  - count: 3
//	    enb: 1
//	    imsi_base: 100
//	    mobility: {model: waypoint, path: [[150, 0], [850, 0]], ...}
//	    traffic:
//	      - {kind: cbr, share: 1.0, rate_kbps: 500}
//	apps:
//	  - {kind: mobility, policy: strongest}
//	slices:
//	  elastic: true        # false = static weight-proportional plan
//	  epoch_ttis: 200      # broker control period
//	  specs:
//	    - {name: gold, group: 0, weight: 2, min_throughput_kbps: 4000}
//	    - {name: bronze, group: 1, arrive_at: 4000, reject_below: 0.3}
//	faults:
//	  - {at: 500, kind: link_cut, enb: 1}
package scenario

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"flexran/internal/lte"
	"flexran/internal/slice"
	"flexran/internal/yamlite"
)

// Defaults applied while parsing.
const (
	// DefaultAttachTTIs bounds the attach phase when run.attach_ttis is
	// absent.
	DefaultAttachTTIs = 2000
	// DefaultPingPongWindowTTI is the window within which a UE returning
	// to the eNodeB it just left counts as a ping-pong handover.
	DefaultPingPongWindowTTI = 1000
)

// RunSpec is the "run:" section.
type RunSpec struct {
	// TTIs is the measured run length after the attach phase.
	TTIs int
	// AttachTTIs bounds the attach phase (0 skips it entirely).
	AttachTTIs int
	// Workers is the engine pool size; the CLI -workers flag overrides.
	Workers int
	// Seed is mixed into every derived per-UE seed.
	Seed int64
	// PingPongWindowTTI classifies return handovers as ping-pongs.
	PingPongWindowTTI int
	// NoFastForward disables the idle-cell fast-forward engine, forcing
	// every eNodeB to step every TTI. Digests are identical either way
	// (the fast-forward contract is bit-exactness); the knob exists for
	// A/B verification and for measuring the skip machinery's benefit.
	NoFastForward bool
}

// NetemDecl impairs one direction of a control channel. The gray knobs
// (burst loss, duplication, reordering, corruption, stall) map onto
// transport.Netem's Gilbert–Elliott and framing-corruption machinery; all
// default to zero, which draws nothing from the random stream and so
// leaves legacy digests untouched.
type NetemDecl struct {
	DelayTTI  int
	JitterTTI int
	Loss      float64
	Seed      int64

	BurstLoss  float64
	BurstEnter float64
	BurstExit  float64
	Dup        float64
	Reorder    float64
	ReorderTTI int
	Corrupt    float64
	StallTTI   int
}

// ENBDecl declares one eNodeB (or a template repeated Count times by the
// topology grid generator).
type ENBDecl struct {
	ID    lte.ENBID
	Agent bool
	Seed  int64
	// Cells is the number of default 10 MHz cells (ids 0..Cells-1).
	Cells int
	// X/Y/PowerDBm place a radio-map site per cell when HasSite.
	X, Y     float64
	PowerDBm float64
	HasSite  bool
	ToMaster NetemDecl
	ToAgent  NetemDecl
	// Policy is a raw policy-reconfiguration document applied to the
	// agent before the attach phase (e.g. rrc handover knobs).
	Policy *yamlite.Node
}

// PointDecl is a scenario-space position in meters.
type PointDecl struct{ X, Y float64 }

// PlacementDecl positions the UEs of a group.
type PlacementDecl struct {
	Kind string // "at", "line", "box"
	At   PointDecl
	From PointDecl
	To   PointDecl
	Min  PointDecl
	Max  PointDecl
	Seed int64
}

// MobilityDecl selects a motion model for a UE group.
type MobilityDecl struct {
	Model        string // "static", "waypoint", "random_waypoint"
	Path         []PointDecl
	SpeedMps     float64
	SpeedStepMps float64 // per-UE speed increment (spreads crossings)
	PingPong     bool
	Min, Max     PointDecl
	Seed         int64
}

// ChannelDecl selects the channel model of a UE group.
type ChannelDecl struct {
	Model string // "auto", "geo", "fixed", "fading", "squarewave", "interference_switched"
	CQI   int64  // fixed
	// fading
	Mean, Rho, Sigma float64
	Seed             int64
	// squarewave
	A, B          int64
	HalfPeriodTTI int64
	// interference_switched
	Clear, Hit     int64
	InterfererENB  lte.ENBID
	InterfererCell lte.CellID
}

// TrafficDecl is one component of a group's traffic mix.
type TrafficDecl struct {
	Kind        string // "cbr", "poisson", "onoff", "full_buffer"
	Share       float64
	RateKbps    float64
	MeanKbps    float64
	PacketBytes int
	OnTTI       int
	OffTTI      int
	StartTTI    int64
	StopTTI     int64
	Seed        int64
}

// UEGroup declares a homogeneous slice of the UE population.
type UEGroup struct {
	Count    int
	ENB      lte.ENBID
	AllENBs  bool // replicate the group on every eNodeB
	Cell     lte.CellID
	IMSIBase uint64
	Group    int
	Place    *PlacementDecl
	Mobility *MobilityDecl
	Channel  ChannelDecl
	DL       []TrafficDecl
	UL       []TrafficDecl
}

// MasterDecl is the "master:" section. A nil *MasterDecl on the Scenario
// means "master: none" (standalone eNodeBs).
type MasterDecl struct {
	StatsPeriodTTI int
	SyncPeriodTTI  int
	EchoPeriodTTI  int
	EchoMissBudget int
	NoResync       bool
	Workers        int

	// Health monitor and reliable-delivery knobs (all 0 = disabled,
	// matching controller.DefaultOptions so legacy digests hold).
	HealthPeriodTTI   int
	HealthSuspectTTI  int
	HealthDegradedTTI int
	HealthRecoverTTI  int
	CmdRetryTTI       int
	CmdRetryBudget    int
}

// AppDecl registers one northbound application.
type AppDecl struct {
	Kind string // "monitor", "mobility", "eicic", "ransharing"

	// monitor
	PeriodTTI int
	// mobility
	Policy            string // "strongest", "load_balanced"
	LoadWeight        float64
	MinMarginDB       float64
	CommandTimeoutTTI int
	// mobility runtime retune: at RetuneAt TTIs into the measured run the
	// target policy is swapped to RetunePolicy via the registry's Retune
	// path (0 = never retune).
	RetuneAt         int64
	RetunePolicy     string
	RetuneLoadWeight float64
	// ransharing
	ENB  lte.ENBID
	Plan []ShareChangeDecl
	// eicic
	MacroENB  lte.ENBID
	MacroCell lte.CellID
	SmallENBs []lte.ENBID
	ABS       int
	Optimized bool
}

// ShareChangeDecl is one scheduled slice-share reallocation (TTIs are
// offsets from the start of the measured run, like fault TTIs).
type ShareChangeDecl struct {
	At     int64
	Shares []float64
}

// SlicesDecl is the "slices:" section: declarative slice specs handed to
// the elastic slice broker (internal/apps/broker). The builder installs
// the agent-side slicing scheduler on every agent eNodeB — initial shares
// split weight-proportionally between the founding (arrive_at 0) specs —
// and Execute registers a broker armed at the end of the attach phase.
// The section is mutually exclusive with the static "slicing:" section.
type SlicesDecl struct {
	// EpochTTIs is the broker's control period (0 = broker default).
	EpochTTIs int
	// Elastic selects the closed loop; false freezes the static
	// weight-proportional plan (the fig_slicing ablation arm).
	Elastic bool
	// WorkConserving and Scheduler configure the agent-side slicer.
	WorkConserving bool
	Scheduler      string // inner per-group scheduler: "rr" (default), "pf"
	// HysteresisEpochs and DegradeFactor override broker defaults (0 keeps
	// them).
	HysteresisEpochs int
	DegradeFactor    float64
	// Specs is the declarative slice set.
	Specs []slice.Spec
}

// SliceDecl installs the slicing scheduler on one (or all) eNodeBs.
type SliceDecl struct {
	ENB            lte.ENBID // 0 = every agent eNodeB
	All            bool
	Shares         []float64
	WorkConserving bool
	Scheduler      string // inner per-group scheduler: "rr" (default), "pf"
}

// FaultDecl schedules one failure-injection event, At TTIs after the
// attach phase completes.
type FaultDecl struct {
	At   int64
	Kind string // "link_cut", "link_restore", "agent_restart", "netem_set", "agent_stall", "agent_resume"
	ENB  lte.ENBID
	// ToMaster/ToAgent carry the replacement per-direction impairments of
	// a netem_set fault; nil leaves that direction unchanged.
	ToMaster *NetemDecl
	ToAgent  *NetemDecl
}

// Scenario is a parsed, validated document. It is purely declarative:
// Build constructs fresh runtime state (generators, channels, apps) on
// every call, so one Scenario can be run many times — including at
// different worker counts — with identical results.
type Scenario struct {
	Name        string
	Description string
	Run         RunSpec
	ENBs        []ENBDecl
	UEs         []UEGroup
	Master      *MasterDecl
	Apps        []AppDecl
	Slices      []SliceDecl
	Broker      *SlicesDecl
	Faults      []FaultDecl
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(string(data))
}

// LoadNamed finds "<name>.yaml" in the repository's scenarios/ library,
// searching upward from the working directory so examples run from the
// repo root, their own directory, or a test's temp cwd.
func LoadNamed(name string) (*Scenario, error) {
	rel := filepath.Join("scenarios", name+".yaml")
	for _, up := range []string{".", "..", filepath.Join("..", "..")} {
		path := filepath.Join(up, rel)
		if _, err := os.Stat(path); err == nil {
			return Load(path)
		}
	}
	return nil, fmt.Errorf("scenario: %s not found (run from the repository tree)", rel)
}

// Parse parses and validates a scenario document.
func Parse(doc string) (*Scenario, error) {
	root, err := yamlite.Parse(doc)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if root.Kind != yamlite.KindMap {
		return nil, fmt.Errorf("scenario: document root must be a map")
	}
	sc := &Scenario{
		Run: RunSpec{
			AttachTTIs:        DefaultAttachTTIs,
			PingPongWindowTTI: DefaultPingPongWindowTTI,
		},
		Master: &MasterDecl{
			StatsPeriodTTI: 1,
			SyncPeriodTTI:  1,
			EchoPeriodTTI:  20,
			EchoMissBudget: 3,
		},
	}
	for _, key := range root.Keys() {
		val := root.Get(key)
		switch key {
		case "name":
			sc.Name = val.Str()
		case "description":
			sc.Description = val.Str()
		case "run":
			if err := sc.parseRun(val); err != nil {
				return nil, err
			}
		case "topology":
			if err := sc.parseTopology(val); err != nil {
				return nil, err
			}
		case "ues":
			if err := sc.parseUEs(val); err != nil {
				return nil, err
			}
		case "master":
			if err := sc.parseMaster(val); err != nil {
				return nil, err
			}
		case "apps":
			if err := sc.parseApps(val); err != nil {
				return nil, err
			}
		case "slicing":
			if err := sc.parseSlicing(val); err != nil {
				return nil, err
			}
		case "slices":
			if err := sc.parseSlices(val); err != nil {
				return nil, err
			}
		case "faults":
			if err := sc.parseFaults(val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("scenario: unknown top-level key %q", key)
		}
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ---------------------------------------------------------------------------
// Section parsers. Every section rejects unknown keys so typos surface as
// errors instead of silently ignored knobs.

func (sc *Scenario) parseRun(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: run section must be a map")
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "ttis":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: run.ttis must be a positive integer")
			}
			sc.Run.TTIs = int(v)
		case "seconds":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return fmt.Errorf("scenario: run.seconds must be a positive number")
			}
			sc.Run.TTIs = int(f * lte.TTIsPerSecond)
		case "attach_ttis":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: run.attach_ttis must be a non-negative integer")
			}
			sc.Run.AttachTTIs = int(v)
		case "workers":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: run.workers must be a non-negative integer")
			}
			sc.Run.Workers = int(v)
		case "seed":
			v, err := val.Int()
			if err != nil {
				return fmt.Errorf("scenario: run.seed must be an integer")
			}
			sc.Run.Seed = v
		case "pingpong_window_tti":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: run.pingpong_window_tti must be a positive integer")
			}
			sc.Run.PingPongWindowTTI = int(v)
		case "no_fast_forward":
			b, err := val.Bool()
			if err != nil {
				return fmt.Errorf("scenario: run.no_fast_forward must be a boolean")
			}
			sc.Run.NoFastForward = b
		default:
			return fmt.Errorf("scenario: run has no knob %q", key)
		}
	}
	return nil
}

func (sc *Scenario) parseTopology(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: topology section must be a map")
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "grid":
			if err := sc.parseGrid(val); err != nil {
				return err
			}
		case "honeycomb":
			if err := sc.parseHoneycomb(val); err != nil {
				return err
			}
		case "enbs":
			if val == nil || val.Kind != yamlite.KindSeq {
				return fmt.Errorf("scenario: topology.enbs must be a sequence")
			}
			for i, item := range val.Items() {
				d, err := parseENB(item, fmt.Sprintf("topology.enbs[%d]", i))
				if err != nil {
					return err
				}
				sc.ENBs = append(sc.ENBs, d)
			}
		default:
			return fmt.Errorf("scenario: topology has no knob %q", key)
		}
	}
	return nil
}

// parseGrid expands "topology.grid" into a row-major lattice of
// single-cell agent eNodeBs with ids 1..N, each carrying one site.
func (sc *Scenario) parseGrid(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: topology.grid must be a map")
	}
	count, cols := 0, 0
	spacing, power := 500.0, 43.0
	var seedBase int64 = 1
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "enbs":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: topology.grid.enbs must be a positive integer")
			}
			count = int(v)
		case "cols":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: topology.grid.cols must be a positive integer")
			}
			cols = int(v)
		case "spacing_m":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return fmt.Errorf("scenario: topology.grid.spacing_m must be a positive number")
			}
			spacing = f
		case "power_dbm":
			f, err := val.Float()
			if err != nil {
				return fmt.Errorf("scenario: topology.grid.power_dbm must be a number")
			}
			power = f
		case "seed_base":
			v, err := val.Int()
			if err != nil {
				return fmt.Errorf("scenario: topology.grid.seed_base must be an integer")
			}
			seedBase = v
		default:
			return fmt.Errorf("scenario: topology.grid has no knob %q", key)
		}
	}
	if count == 0 {
		return fmt.Errorf("scenario: topology.grid.enbs is required")
	}
	if cols == 0 {
		cols = int(math.Ceil(math.Sqrt(float64(count))))
	}
	for i := 0; i < count; i++ {
		sc.ENBs = append(sc.ENBs, ENBDecl{
			ID:    lte.ENBID(i + 1),
			Agent: true,
			Seed:  seedBase + int64(i),
			Cells: 1,
			X:     float64(i%cols) * spacing,
			Y:     float64(i/cols) * spacing,

			PowerDBm: power,
			HasSite:  true,
		})
	}
	return nil
}

// parseHoneycomb expands "topology.honeycomb" into a hexagonal cellular
// deployment: sites on a triangular lattice spiralling outward from a
// centre eNodeB, the classic honeycomb layout of LTE planning studies.
// Exactly one of `enbs` (site count, spiral truncated mid-ring) or
// `rings` (complete rings R, yielding 1+3R(R+1) sites) selects the size.
func (sc *Scenario) parseHoneycomb(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: topology.honeycomb must be a map")
	}
	count, rings := 0, -1
	pitch, power := 500.0, 43.0
	sectors := 1
	var seedBase int64 = 1
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "enbs":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: topology.honeycomb.enbs must be a positive integer")
			}
			count = int(v)
		case "rings":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: topology.honeycomb.rings must be a non-negative integer")
			}
			rings = int(v)
		case "pitch_m":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return fmt.Errorf("scenario: topology.honeycomb.pitch_m must be a positive number")
			}
			pitch = f
		case "sectors":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: topology.honeycomb.sectors must be a positive integer")
			}
			sectors = int(v)
		case "power_dbm":
			f, err := val.Float()
			if err != nil {
				return fmt.Errorf("scenario: topology.honeycomb.power_dbm must be a number")
			}
			power = f
		case "seed_base":
			v, err := val.Int()
			if err != nil {
				return fmt.Errorf("scenario: topology.honeycomb.seed_base must be an integer")
			}
			seedBase = v
		default:
			return fmt.Errorf("scenario: topology.honeycomb has no knob %q", key)
		}
	}
	if (count == 0) == (rings < 0) {
		return fmt.Errorf("scenario: topology.honeycomb needs exactly one of enbs or rings")
	}
	if count == 0 {
		count = 1 + 3*rings*(rings+1)
	}
	for i, ax := range hexSpiral(count) {
		// Axial-to-plane: unit hexagonal lattice scaled by the site pitch.
		x := pitch * (float64(ax.q) + float64(ax.r)/2)
		y := pitch * float64(ax.r) * math.Sqrt(3) / 2
		sc.ENBs = append(sc.ENBs, ENBDecl{
			ID:    lte.ENBID(i + 1),
			Agent: true,
			Seed:  seedBase + int64(i),
			Cells: sectors,
			X:     x,
			Y:     y,

			PowerDBm: power,
			HasSite:  true,
		})
	}
	return nil
}

// hexAxial is a cell of the hexagonal lattice in axial coordinates.
type hexAxial struct{ q, r int }

// hexSpiral enumerates n lattice cells spiralling outward from the
// origin: the centre, then ring 1, ring 2, ... Each ring k starts at
// axial (k, -k) and walks its six sides counter-clockwise, k steps per
// side, emitting each cell before stepping. The order is a pure function
// of n, so site ids (and everything seeded from them) are deterministic.
func hexSpiral(n int) []hexAxial {
	dirs := [6]hexAxial{{0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1}, {1, 0}}
	out := make([]hexAxial, 0, n)
	out = append(out, hexAxial{0, 0})
	for k := 1; len(out) < n; k++ {
		cur := hexAxial{k, -k}
		for _, d := range dirs {
			for step := 0; step < k; step++ {
				if len(out) == n {
					return out
				}
				out = append(out, cur)
				cur = hexAxial{cur.q + d.q, cur.r + d.r}
			}
		}
	}
	return out[:n]
}

func parseENB(n *yamlite.Node, where string) (ENBDecl, error) {
	d := ENBDecl{Agent: true, Cells: 1}
	if n == nil || n.Kind != yamlite.KindMap {
		return d, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "id":
			v, err := posInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.id must be a positive integer", where)
			}
			d.ID = lte.ENBID(v)
		case "agent":
			b, err := val.Bool()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.agent must be a boolean", where)
			}
			d.Agent = b
		case "seed":
			v, err := val.Int()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			d.Seed = v
		case "cells":
			v, err := posInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.cells must be a positive integer", where)
			}
			d.Cells = int(v)
		case "x":
			f, err := val.Float()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.x must be a number", where)
			}
			d.X = f
		case "y":
			f, err := val.Float()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.y must be a number", where)
			}
			d.Y = f
		case "power_dbm":
			f, err := val.Float()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.power_dbm must be a number", where)
			}
			d.PowerDBm = f
			d.HasSite = true
		case "to_master":
			ne, err := parseNetem(val, where+".to_master")
			if err != nil {
				return d, err
			}
			d.ToMaster = ne
		case "to_agent":
			ne, err := parseNetem(val, where+".to_agent")
			if err != nil {
				return d, err
			}
			d.ToAgent = ne
		case "policy":
			if val == nil || val.Kind != yamlite.KindMap {
				return d, fmt.Errorf("scenario: %s.policy must be a map", where)
			}
			d.Policy = val
		default:
			return d, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if d.ID == 0 {
		return d, fmt.Errorf("scenario: %s.id is required", where)
	}
	return d, nil
}

func parseNetem(n *yamlite.Node, where string) (NetemDecl, error) {
	var d NetemDecl
	if n == nil || n.Kind != yamlite.KindMap {
		return d, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "delay_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.delay_tti must be a non-negative integer", where)
			}
			d.DelayTTI = int(v)
		case "jitter_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.jitter_tti must be a non-negative integer", where)
			}
			d.JitterTTI = int(v)
		case "loss":
			f, err := val.Float()
			if err != nil || f < 0 || f > 1 {
				return d, fmt.Errorf("scenario: %s.loss must be a probability in [0, 1]", where)
			}
			d.Loss = f
		case "seed":
			v, err := val.Int()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			d.Seed = v
		case "burst_loss":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.burst_loss must be a probability in [0, 1]", where)
			}
			d.BurstLoss = f
		case "burst_enter":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.burst_enter must be a probability in [0, 1]", where)
			}
			d.BurstEnter = f
		case "burst_exit":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.burst_exit must be a probability in [0, 1]", where)
			}
			d.BurstExit = f
		case "dup":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.dup must be a probability in [0, 1]", where)
			}
			d.Dup = f
		case "reorder":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.reorder must be a probability in [0, 1]", where)
			}
			d.Reorder = f
		case "reorder_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.reorder_tti must be a non-negative integer", where)
			}
			d.ReorderTTI = int(v)
		case "corrupt":
			f, err := probVal(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.corrupt must be a probability in [0, 1]", where)
			}
			d.Corrupt = f
		case "stall_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.stall_tti must be a non-negative integer", where)
			}
			d.StallTTI = int(v)
		default:
			return d, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	return d, nil
}

func (sc *Scenario) parseUEs(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindSeq {
		return fmt.Errorf("scenario: ues section must be a sequence")
	}
	for i, item := range n.Items() {
		g, err := parseUEGroup(item, fmt.Sprintf("ues[%d]", i))
		if err != nil {
			return err
		}
		sc.UEs = append(sc.UEs, g)
	}
	return nil
}

func parseUEGroup(n *yamlite.Node, where string) (UEGroup, error) {
	g := UEGroup{Count: 1}
	if n == nil || n.Kind != yamlite.KindMap {
		return g, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "count":
			v, err := posInt(val)
			if err != nil {
				return g, fmt.Errorf("scenario: %s.count must be a positive integer", where)
			}
			g.Count = int(v)
		case "enb":
			if val.Str() == "all" {
				g.AllENBs = true
				break
			}
			v, err := posInt(val)
			if err != nil {
				return g, fmt.Errorf("scenario: %s.enb must be a positive integer or \"all\"", where)
			}
			g.ENB = lte.ENBID(v)
		case "cell":
			v, err := nonNegInt(val)
			if err != nil {
				return g, fmt.Errorf("scenario: %s.cell must be a non-negative integer", where)
			}
			g.Cell = lte.CellID(v)
		case "imsi_base":
			v, err := posInt(val)
			if err != nil {
				return g, fmt.Errorf("scenario: %s.imsi_base must be a positive integer", where)
			}
			g.IMSIBase = uint64(v)
		case "group":
			v, err := nonNegInt(val)
			if err != nil {
				return g, fmt.Errorf("scenario: %s.group must be a non-negative integer", where)
			}
			g.Group = int(v)
		case "placement":
			p, err := parsePlacement(val, where+".placement")
			if err != nil {
				return g, err
			}
			g.Place = &p
		case "mobility":
			m, err := parseMobility(val, where+".mobility")
			if err != nil {
				return g, err
			}
			g.Mobility = &m
		case "channel":
			c, err := parseChannel(val, where+".channel")
			if err != nil {
				return g, err
			}
			g.Channel = c
		case "traffic":
			mix, err := parseTrafficMix(val, where+".traffic")
			if err != nil {
				return g, err
			}
			g.DL = mix
		case "uplink":
			mix, err := parseTrafficMix(val, where+".uplink")
			if err != nil {
				return g, err
			}
			g.UL = mix
		default:
			return g, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if g.IMSIBase == 0 {
		return g, fmt.Errorf("scenario: %s.imsi_base is required", where)
	}
	if g.ENB == 0 && !g.AllENBs {
		return g, fmt.Errorf("scenario: %s.enb is required", where)
	}
	return g, nil
}

func parsePoint(n *yamlite.Node, where string) (PointDecl, error) {
	fs, err := n.Floats()
	if err != nil || len(fs) != 2 {
		return PointDecl{}, fmt.Errorf("scenario: %s must be an [x, y] pair", where)
	}
	return PointDecl{X: fs[0], Y: fs[1]}, nil
}

func parsePlacement(n *yamlite.Node, where string) (PlacementDecl, error) {
	var p PlacementDecl
	if n == nil || n.Kind != yamlite.KindMap {
		return p, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "at":
			pt, err := parsePoint(val, where+".at")
			if err != nil {
				return p, err
			}
			p.Kind, p.At = "at", pt
		case "from":
			pt, err := parsePoint(val, where+".from")
			if err != nil {
				return p, err
			}
			p.Kind, p.From = "line", pt
		case "to":
			pt, err := parsePoint(val, where+".to")
			if err != nil {
				return p, err
			}
			p.Kind, p.To = "line", pt
		case "min":
			pt, err := parsePoint(val, where+".min")
			if err != nil {
				return p, err
			}
			p.Kind, p.Min = "box", pt
		case "max":
			pt, err := parsePoint(val, where+".max")
			if err != nil {
				return p, err
			}
			p.Kind, p.Max = "box", pt
		case "seed":
			v, err := val.Int()
			if err != nil {
				return p, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			p.Seed = v
		default:
			return p, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if p.Kind == "" {
		return p, fmt.Errorf("scenario: %s needs at/from+to/min+max", where)
	}
	return p, nil
}

func parseMobility(n *yamlite.Node, where string) (MobilityDecl, error) {
	var m MobilityDecl
	if n == nil || n.Kind != yamlite.KindMap {
		return m, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "model":
			m.Model = val.Str()
		case "path":
			if val == nil || val.Kind != yamlite.KindSeq {
				return m, fmt.Errorf("scenario: %s.path must be a sequence of [x, y] pairs", where)
			}
			for _, it := range val.Items() {
				pt, err := parsePoint(it, where+".path")
				if err != nil {
					return m, err
				}
				m.Path = append(m.Path, pt)
			}
		case "speed_mps":
			f, err := val.Float()
			if err != nil || f < 0 {
				return m, fmt.Errorf("scenario: %s.speed_mps must be a non-negative number", where)
			}
			m.SpeedMps = f
		case "speed_step_mps":
			f, err := val.Float()
			if err != nil {
				return m, fmt.Errorf("scenario: %s.speed_step_mps must be a number", where)
			}
			m.SpeedStepMps = f
		case "ping_pong":
			b, err := val.Bool()
			if err != nil {
				return m, fmt.Errorf("scenario: %s.ping_pong must be a boolean", where)
			}
			m.PingPong = b
		case "min":
			pt, err := parsePoint(val, where+".min")
			if err != nil {
				return m, err
			}
			m.Min = pt
		case "max":
			pt, err := parsePoint(val, where+".max")
			if err != nil {
				return m, err
			}
			m.Max = pt
		case "seed":
			v, err := val.Int()
			if err != nil {
				return m, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			m.Seed = v
		default:
			return m, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	switch m.Model {
	case "static", "waypoint", "random_waypoint":
	case "":
		return m, fmt.Errorf("scenario: %s.model is required", where)
	default:
		return m, fmt.Errorf("scenario: %s.model: unknown mobility model %q", where, m.Model)
	}
	if m.Model == "waypoint" && len(m.Path) < 2 {
		return m, fmt.Errorf("scenario: %s.path needs at least 2 waypoints", where)
	}
	return m, nil
}

func parseChannel(n *yamlite.Node, where string) (ChannelDecl, error) {
	c := ChannelDecl{Model: "auto", Rho: 0.99, Sigma: 1.5}
	if n == nil || n.Kind != yamlite.KindMap {
		return c, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "model":
			c.Model = val.Str()
		case "cqi":
			v, err := cqiVal(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.cqi must be a CQI in [1, 15]", where)
			}
			c.CQI = v
		case "mean":
			f, err := val.Float()
			if err != nil {
				return c, fmt.Errorf("scenario: %s.mean must be a number", where)
			}
			c.Mean = f
		case "rho":
			f, err := val.Float()
			if err != nil || f < 0 || f >= 1 {
				return c, fmt.Errorf("scenario: %s.rho must be in [0, 1)", where)
			}
			c.Rho = f
		case "sigma":
			f, err := val.Float()
			if err != nil || f < 0 {
				return c, fmt.Errorf("scenario: %s.sigma must be a non-negative number", where)
			}
			c.Sigma = f
		case "seed":
			v, err := val.Int()
			if err != nil {
				return c, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			c.Seed = v
		case "a":
			v, err := cqiVal(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.a must be a CQI in [1, 15]", where)
			}
			c.A = v
		case "b":
			v, err := cqiVal(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.b must be a CQI in [1, 15]", where)
			}
			c.B = v
		case "half_period_tti":
			v, err := posInt(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.half_period_tti must be a positive integer", where)
			}
			c.HalfPeriodTTI = v
		case "clear":
			v, err := cqiVal(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.clear must be a CQI in [1, 15]", where)
			}
			c.Clear = v
		case "hit":
			v, err := cqiVal(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.hit must be a CQI in [1, 15]", where)
			}
			c.Hit = v
		case "interferer_enb":
			v, err := posInt(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.interferer_enb must be a positive integer", where)
			}
			c.InterfererENB = lte.ENBID(v)
		case "interferer_cell":
			v, err := nonNegInt(val)
			if err != nil {
				return c, fmt.Errorf("scenario: %s.interferer_cell must be a non-negative integer", where)
			}
			c.InterfererCell = lte.CellID(v)
		default:
			return c, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	switch c.Model {
	case "auto", "geo":
	case "fixed":
		if c.CQI == 0 {
			return c, fmt.Errorf("scenario: %s.cqi is required for the fixed model", where)
		}
	case "fading":
		if c.Mean == 0 {
			return c, fmt.Errorf("scenario: %s.mean is required for the fading model", where)
		}
	case "squarewave":
		if c.A == 0 || c.B == 0 || c.HalfPeriodTTI == 0 {
			return c, fmt.Errorf("scenario: %s needs a, b and half_period_tti for the squarewave model", where)
		}
	case "interference_switched":
		if c.Clear == 0 || c.Hit == 0 || c.InterfererENB == 0 {
			return c, fmt.Errorf("scenario: %s needs clear, hit and interferer_enb for the interference_switched model", where)
		}
	default:
		return c, fmt.Errorf("scenario: %s.model: unknown channel model %q", where, c.Model)
	}
	return c, nil
}

func parseTrafficMix(n *yamlite.Node, where string) ([]TrafficDecl, error) {
	if n == nil || n.Kind != yamlite.KindSeq {
		return nil, fmt.Errorf("scenario: %s must be a sequence", where)
	}
	var mix []TrafficDecl
	for i, item := range n.Items() {
		d, err := parseTraffic(item, fmt.Sprintf("%s[%d]", where, i))
		if err != nil {
			return nil, err
		}
		mix = append(mix, d)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("scenario: %s must not be empty", where)
	}
	if len(mix) == 1 && mix[0].Share == 0 {
		mix[0].Share = 1
	}
	sum := 0.0
	for _, d := range mix {
		sum += d.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("scenario: %s: shares sum to %.3f, want 1.0", where, sum)
	}
	return mix, nil
}

func parseTraffic(n *yamlite.Node, where string) (TrafficDecl, error) {
	var d TrafficDecl
	if n == nil || n.Kind != yamlite.KindMap {
		return d, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "kind":
			d.Kind = val.Str()
		case "share":
			f, err := val.Float()
			if err != nil || f <= 0 || f > 1 {
				return d, fmt.Errorf("scenario: %s.share must be in (0, 1]", where)
			}
			d.Share = f
		case "rate_kbps":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return d, fmt.Errorf("scenario: %s.rate_kbps must be a positive number", where)
			}
			d.RateKbps = f
		case "mean_kbps":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return d, fmt.Errorf("scenario: %s.mean_kbps must be a positive number", where)
			}
			d.MeanKbps = f
		case "packet_bytes":
			v, err := posInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.packet_bytes must be a positive integer", where)
			}
			d.PacketBytes = int(v)
		case "on_tti":
			v, err := posInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.on_tti must be a positive integer", where)
			}
			d.OnTTI = int(v)
		case "off_tti":
			v, err := posInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.off_tti must be a positive integer", where)
			}
			d.OffTTI = int(v)
		case "start_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.start_tti must be a non-negative integer", where)
			}
			d.StartTTI = v
		case "stop_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return d, fmt.Errorf("scenario: %s.stop_tti must be a non-negative integer", where)
			}
			d.StopTTI = v
		case "seed":
			v, err := val.Int()
			if err != nil {
				return d, fmt.Errorf("scenario: %s.seed must be an integer", where)
			}
			d.Seed = v
		default:
			return d, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	switch d.Kind {
	case "cbr":
		if d.RateKbps == 0 {
			return d, fmt.Errorf("scenario: %s.rate_kbps is required for cbr", where)
		}
	case "poisson":
		if d.MeanKbps == 0 {
			return d, fmt.Errorf("scenario: %s.mean_kbps is required for poisson", where)
		}
	case "onoff":
		if d.RateKbps == 0 || d.OnTTI == 0 || d.OffTTI == 0 {
			return d, fmt.Errorf("scenario: %s needs rate_kbps, on_tti and off_tti for onoff", where)
		}
	case "full_buffer":
	case "":
		return d, fmt.Errorf("scenario: %s.kind is required", where)
	default:
		return d, fmt.Errorf("scenario: %s: unknown traffic kind %q", where, d.Kind)
	}
	return d, nil
}

func (sc *Scenario) parseMaster(n *yamlite.Node) error {
	if n != nil && n.Kind == yamlite.KindScalar && n.Str() == "none" {
		sc.Master = nil
		return nil
	}
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: master section must be a map or \"none\"")
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "stats_period_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.stats_period_tti must be a non-negative integer")
			}
			sc.Master.StatsPeriodTTI = int(v)
		case "sync_period_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.sync_period_tti must be a non-negative integer")
			}
			sc.Master.SyncPeriodTTI = int(v)
		case "echo_period_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.echo_period_tti must be a non-negative integer")
			}
			sc.Master.EchoPeriodTTI = int(v)
		case "echo_miss_budget":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.echo_miss_budget must be a non-negative integer")
			}
			sc.Master.EchoMissBudget = int(v)
		case "no_resync":
			b, err := val.Bool()
			if err != nil {
				return fmt.Errorf("scenario: master.no_resync must be a boolean")
			}
			sc.Master.NoResync = b
		case "workers":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.workers must be a non-negative integer")
			}
			sc.Master.Workers = int(v)
		case "health_period_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.health_period_tti must be a non-negative integer")
			}
			sc.Master.HealthPeriodTTI = int(v)
		case "health_suspect_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.health_suspect_tti must be a non-negative integer")
			}
			sc.Master.HealthSuspectTTI = int(v)
		case "health_degraded_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.health_degraded_tti must be a non-negative integer")
			}
			sc.Master.HealthDegradedTTI = int(v)
		case "health_recover_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.health_recover_tti must be a non-negative integer")
			}
			sc.Master.HealthRecoverTTI = int(v)
		case "cmd_retry_tti":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.cmd_retry_tti must be a non-negative integer")
			}
			sc.Master.CmdRetryTTI = int(v)
		case "cmd_retry_budget":
			v, err := nonNegInt(val)
			if err != nil {
				return fmt.Errorf("scenario: master.cmd_retry_budget must be a non-negative integer")
			}
			sc.Master.CmdRetryBudget = int(v)
		default:
			return fmt.Errorf("scenario: master has no knob %q", key)
		}
	}
	return nil
}

func (sc *Scenario) parseApps(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindSeq {
		return fmt.Errorf("scenario: apps section must be a sequence")
	}
	for i, item := range n.Items() {
		a, err := parseApp(item, fmt.Sprintf("apps[%d]", i))
		if err != nil {
			return err
		}
		sc.Apps = append(sc.Apps, a)
	}
	return nil
}

func parseApp(n *yamlite.Node, where string) (AppDecl, error) {
	a := AppDecl{
		PeriodTTI:         100,
		Policy:            "strongest",
		CommandTimeoutTTI: 200,
		ABS:               4,
	}
	if n == nil || n.Kind != yamlite.KindMap {
		return a, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "kind":
			a.Kind = val.Str()
		case "period_tti":
			v, err := posInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.period_tti must be a positive integer", where)
			}
			a.PeriodTTI = int(v)
		case "policy":
			switch val.Str() {
			case "strongest", "load_balanced":
				a.Policy = val.Str()
			default:
				return a, fmt.Errorf("scenario: %s.policy: unknown target policy %q", where, val.Str())
			}
		case "load_weight":
			f, err := val.Float()
			if err != nil || f < 0 {
				return a, fmt.Errorf("scenario: %s.load_weight must be a non-negative number", where)
			}
			a.LoadWeight = f
		case "min_margin_db":
			f, err := val.Float()
			if err != nil || f < 0 {
				return a, fmt.Errorf("scenario: %s.min_margin_db must be a non-negative number", where)
			}
			a.MinMarginDB = f
		case "command_timeout_tti":
			v, err := posInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.command_timeout_tti must be a positive integer", where)
			}
			a.CommandTimeoutTTI = int(v)
		case "retune_at":
			v, err := posInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.retune_at must be a positive integer", where)
			}
			a.RetuneAt = v
		case "retune_policy":
			switch val.Str() {
			case "strongest", "load_balanced":
				a.RetunePolicy = val.Str()
			default:
				return a, fmt.Errorf("scenario: %s.retune_policy: unknown target policy %q", where, val.Str())
			}
		case "retune_load_weight":
			f, err := val.Float()
			if err != nil || f < 0 {
				return a, fmt.Errorf("scenario: %s.retune_load_weight must be a non-negative number", where)
			}
			a.RetuneLoadWeight = f
		case "enb":
			v, err := posInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.enb must be a positive integer", where)
			}
			a.ENB = lte.ENBID(v)
		case "plan":
			if val == nil || val.Kind != yamlite.KindSeq {
				return a, fmt.Errorf("scenario: %s.plan must be a sequence", where)
			}
			for j, it := range val.Items() {
				ch, err := parseShareChange(it, fmt.Sprintf("%s.plan[%d]", where, j))
				if err != nil {
					return a, err
				}
				a.Plan = append(a.Plan, ch)
			}
		case "macro_enb":
			v, err := posInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.macro_enb must be a positive integer", where)
			}
			a.MacroENB = lte.ENBID(v)
		case "macro_cell":
			v, err := nonNegInt(val)
			if err != nil {
				return a, fmt.Errorf("scenario: %s.macro_cell must be a non-negative integer", where)
			}
			a.MacroCell = lte.CellID(v)
		case "small_enbs":
			if val == nil || val.Kind != yamlite.KindSeq {
				return a, fmt.Errorf("scenario: %s.small_enbs must be a sequence", where)
			}
			for _, it := range val.Items() {
				v, err := posInt(it)
				if err != nil {
					return a, fmt.Errorf("scenario: %s.small_enbs must hold positive integers", where)
				}
				a.SmallENBs = append(a.SmallENBs, lte.ENBID(v))
			}
		case "abs":
			v, err := posInt(val)
			if err != nil || v > 9 {
				return a, fmt.Errorf("scenario: %s.abs must be in [1, 9]", where)
			}
			a.ABS = int(v)
		case "optimized":
			b, err := val.Bool()
			if err != nil {
				return a, fmt.Errorf("scenario: %s.optimized must be a boolean", where)
			}
			a.Optimized = b
		default:
			return a, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if a.Kind != "mobility" && (a.RetuneAt > 0 || a.RetunePolicy != "") {
		return a, fmt.Errorf("scenario: %s: retune knobs apply to mobility apps only", where)
	}
	if a.RetunePolicy != "" && a.RetuneAt == 0 {
		return a, fmt.Errorf("scenario: %s.retune_at is required with retune_policy", where)
	}
	if a.RetuneAt > 0 && a.RetunePolicy == "" {
		return a, fmt.Errorf("scenario: %s.retune_policy is required with retune_at", where)
	}
	switch a.Kind {
	case "monitor", "mobility":
	case "ransharing":
		if a.ENB == 0 {
			return a, fmt.Errorf("scenario: %s.enb is required for ransharing", where)
		}
	case "eicic":
		if a.MacroENB == 0 || len(a.SmallENBs) == 0 {
			return a, fmt.Errorf("scenario: %s needs macro_enb and small_enbs for eicic", where)
		}
	case "":
		return a, fmt.Errorf("scenario: %s.kind is required", where)
	default:
		return a, fmt.Errorf("scenario: %s: unknown app kind %q", where, a.Kind)
	}
	return a, nil
}

func parseShareChange(n *yamlite.Node, where string) (ShareChangeDecl, error) {
	var ch ShareChangeDecl
	if n == nil || n.Kind != yamlite.KindMap {
		return ch, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "at":
			v, err := nonNegInt(val)
			if err != nil {
				return ch, fmt.Errorf("scenario: %s.at must be a non-negative integer", where)
			}
			ch.At = v
		case "shares":
			fs, err := val.Floats()
			if err != nil || len(fs) == 0 {
				return ch, fmt.Errorf("scenario: %s.shares must be a float sequence", where)
			}
			ch.Shares = fs
		default:
			return ch, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if ch.Shares == nil {
		return ch, fmt.Errorf("scenario: %s.shares is required", where)
	}
	return ch, nil
}

func (sc *Scenario) parseSlicing(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindSeq {
		return fmt.Errorf("scenario: slicing section must be a sequence")
	}
	for i, item := range n.Items() {
		where := fmt.Sprintf("slicing[%d]", i)
		d := SliceDecl{Scheduler: "rr"}
		if item == nil || item.Kind != yamlite.KindMap {
			return fmt.Errorf("scenario: %s must be a map", where)
		}
		for _, key := range item.Keys() {
			val := item.Get(key)
			switch key {
			case "enb":
				if val.Str() == "all" {
					d.All = true
					break
				}
				v, err := posInt(val)
				if err != nil {
					return fmt.Errorf("scenario: %s.enb must be a positive integer or \"all\"", where)
				}
				d.ENB = lte.ENBID(v)
			case "shares":
				fs, err := val.Floats()
				if err != nil || len(fs) == 0 {
					return fmt.Errorf("scenario: %s.shares must be a float sequence", where)
				}
				d.Shares = fs
			case "work_conserving":
				b, err := val.Bool()
				if err != nil {
					return fmt.Errorf("scenario: %s.work_conserving must be a boolean", where)
				}
				d.WorkConserving = b
			case "scheduler":
				switch val.Str() {
				case "rr", "pf":
					d.Scheduler = val.Str()
				default:
					return fmt.Errorf("scenario: %s.scheduler: unknown scheduler %q", where, val.Str())
				}
			default:
				return fmt.Errorf("scenario: %s has no knob %q", where, key)
			}
		}
		if d.Shares == nil {
			return fmt.Errorf("scenario: %s.shares is required", where)
		}
		if d.ENB == 0 && !d.All {
			return fmt.Errorf("scenario: %s.enb is required (an id or \"all\")", where)
		}
		sum := 0.0
		for _, f := range d.Shares {
			if f < 0 || f > 1 {
				return fmt.Errorf("scenario: %s.shares must hold fractions in [0, 1]", where)
			}
			sum += f
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("scenario: %s.shares sum to %.3f, want <= 1.0", where, sum)
		}
		sc.Slices = append(sc.Slices, d)
	}
	return nil
}

func (sc *Scenario) parseSlices(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindMap {
		return fmt.Errorf("scenario: slices section must be a map")
	}
	d := &SlicesDecl{Elastic: true, Scheduler: "rr"}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "epoch_ttis":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: slices.epoch_ttis must be a positive integer")
			}
			d.EpochTTIs = int(v)
		case "elastic":
			b, err := val.Bool()
			if err != nil {
				return fmt.Errorf("scenario: slices.elastic must be a boolean")
			}
			d.Elastic = b
		case "work_conserving":
			b, err := val.Bool()
			if err != nil {
				return fmt.Errorf("scenario: slices.work_conserving must be a boolean")
			}
			d.WorkConserving = b
		case "scheduler":
			switch val.Str() {
			case "rr", "pf":
				d.Scheduler = val.Str()
			default:
				return fmt.Errorf("scenario: slices.scheduler: unknown scheduler %q", val.Str())
			}
		case "hysteresis_epochs":
			v, err := posInt(val)
			if err != nil {
				return fmt.Errorf("scenario: slices.hysteresis_epochs must be a positive integer")
			}
			d.HysteresisEpochs = int(v)
		case "degrade_factor":
			f, err := val.Float()
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("scenario: slices.degrade_factor must be in (0, 1]")
			}
			d.DegradeFactor = f
		case "specs":
			if val == nil || val.Kind != yamlite.KindSeq {
				return fmt.Errorf("scenario: slices.specs must be a sequence")
			}
			for i, item := range val.Items() {
				sp, err := parseSliceSpec(item, fmt.Sprintf("slices.specs[%d]", i))
				if err != nil {
					return err
				}
				d.Specs = append(d.Specs, sp)
			}
		default:
			return fmt.Errorf("scenario: slices has no knob %q", key)
		}
	}
	if len(d.Specs) == 0 {
		return fmt.Errorf("scenario: slices.specs must declare at least one slice")
	}
	sc.Broker = d
	return nil
}

func parseSliceSpec(n *yamlite.Node, where string) (slice.Spec, error) {
	var sp slice.Spec
	if n == nil || n.Kind != yamlite.KindMap {
		return sp, fmt.Errorf("scenario: %s must be a map", where)
	}
	for _, key := range n.Keys() {
		val := n.Get(key)
		switch key {
		case "name":
			sp.Name = val.Str()
		case "group":
			v, err := nonNegInt(val)
			if err != nil {
				return sp, fmt.Errorf("scenario: %s.group must be a non-negative integer", where)
			}
			sp.Group = int(v)
		case "weight":
			f, err := val.Float()
			if err != nil || f < 0 {
				return sp, fmt.Errorf("scenario: %s.weight must be a non-negative number", where)
			}
			sp.Weight = f
		case "min_throughput_kbps":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return sp, fmt.Errorf("scenario: %s.min_throughput_kbps must be a positive number", where)
			}
			sp.SLA.MinThroughputKbps = f
		case "max_queue_ms":
			f, err := val.Float()
			if err != nil || f <= 0 {
				return sp, fmt.Errorf("scenario: %s.max_queue_ms must be a positive number", where)
			}
			sp.SLA.MaxQueueMs = f
		case "arrive_at":
			v, err := nonNegInt(val)
			if err != nil {
				return sp, fmt.Errorf("scenario: %s.arrive_at must be a non-negative integer", where)
			}
			sp.ArriveAt = v
		case "admit_above":
			f, err := val.Float()
			if err != nil || f < 0 {
				return sp, fmt.Errorf("scenario: %s.admit_above must be a non-negative number", where)
			}
			sp.Admission.AdmitAbove = f
		case "reject_below":
			f, err := val.Float()
			if err != nil || f < 0 {
				return sp, fmt.Errorf("scenario: %s.reject_below must be a non-negative number", where)
			}
			sp.Admission.RejectBelow = f
		case "hysteresis_epochs":
			v, err := posInt(val)
			if err != nil {
				return sp, fmt.Errorf("scenario: %s.hysteresis_epochs must be a positive integer", where)
			}
			sp.HysteresisEpochs = int(v)
		default:
			return sp, fmt.Errorf("scenario: %s has no knob %q", where, key)
		}
	}
	if err := sp.Validate(); err != nil {
		return sp, fmt.Errorf("scenario: %s: %v", where, err)
	}
	return sp, nil
}

func (sc *Scenario) parseFaults(n *yamlite.Node) error {
	if n == nil || n.Kind != yamlite.KindSeq {
		return fmt.Errorf("scenario: faults section must be a sequence")
	}
	for i, item := range n.Items() {
		where := fmt.Sprintf("faults[%d]", i)
		var d FaultDecl
		if item == nil || item.Kind != yamlite.KindMap {
			return fmt.Errorf("scenario: %s must be a map", where)
		}
		for _, key := range item.Keys() {
			val := item.Get(key)
			switch key {
			case "at":
				v, err := nonNegInt(val)
				if err != nil {
					return fmt.Errorf("scenario: %s.at must be a non-negative integer", where)
				}
				d.At = v
			case "kind":
				switch val.Str() {
				case "link_cut", "link_restore", "agent_restart", "netem_set", "agent_stall", "agent_resume":
					d.Kind = val.Str()
				default:
					return fmt.Errorf("scenario: %s: unknown fault kind %q", where, val.Str())
				}
			case "enb":
				v, err := posInt(val)
				if err != nil {
					return fmt.Errorf("scenario: %s.enb must be a positive integer", where)
				}
				d.ENB = lte.ENBID(v)
			case "to_master":
				ne, err := parseNetem(val, where+".to_master")
				if err != nil {
					return err
				}
				d.ToMaster = &ne
			case "to_agent":
				ne, err := parseNetem(val, where+".to_agent")
				if err != nil {
					return err
				}
				d.ToAgent = &ne
			default:
				return fmt.Errorf("scenario: %s has no knob %q", where, key)
			}
		}
		if d.Kind == "" {
			return fmt.Errorf("scenario: %s.kind is required", where)
		}
		if d.ENB == 0 {
			return fmt.Errorf("scenario: %s.enb is required", where)
		}
		sc.Faults = append(sc.Faults, d)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Cross-section validation.

func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if sc.Run.TTIs == 0 {
		return fmt.Errorf("scenario: run.ttis is required")
	}
	if len(sc.ENBs) == 0 {
		return fmt.Errorf("scenario: topology declares no eNodeBs")
	}
	byID := map[lte.ENBID]*ENBDecl{}
	for i := range sc.ENBs {
		d := &sc.ENBs[i]
		if byID[d.ID] != nil {
			return fmt.Errorf("scenario: duplicate eNodeB id %d", d.ID)
		}
		byID[d.ID] = d
	}
	hasMap := false
	for i := range sc.ENBs {
		if sc.ENBs[i].HasSite {
			hasMap = true
		}
	}
	imsis := map[uint64]bool{}
	for i := range sc.UEs {
		g := &sc.UEs[i]
		where := fmt.Sprintf("ues[%d]", i)
		targets := []*ENBDecl{byID[g.ENB]}
		if g.AllENBs {
			targets = targets[:0]
			for j := range sc.ENBs {
				targets = append(targets, &sc.ENBs[j])
			}
		} else if targets[0] == nil {
			return fmt.Errorf("scenario: %s.enb: unknown eNodeB %d", where, g.ENB)
		}
		for _, t := range targets {
			if int(g.Cell) >= t.Cells {
				return fmt.Errorf("scenario: %s.cell: eNodeB %d has no cell %d", where, t.ID, g.Cell)
			}
		}
		n := g.Count
		if g.AllENBs {
			n *= len(sc.ENBs)
		}
		for k := 0; k < n; k++ {
			imsi := g.IMSIBase + uint64(k)
			if imsis[imsi] {
				return fmt.Errorf("scenario: %s: IMSI %d collides with another group", where, imsi)
			}
			imsis[imsi] = true
		}
		// Resolve "auto" the same way the builder will: geo with a radio
		// map, fixed without one — so every geo-channel constraint below
		// covers both spellings.
		model := g.Channel.Model
		if model == "auto" || model == "" {
			if hasMap {
				model = "geo"
			} else {
				model = "fixed"
			}
		}
		switch model {
		case "geo":
			if !hasMap {
				return fmt.Errorf("scenario: %s: the geo channel model needs radio-map sites (power_dbm on eNodeBs)", where)
			}
			// A siteless serving eNodeB yields CQI 0 forever — the UE
			// would silently never attach.
			for _, t := range targets {
				if !t.HasSite {
					return fmt.Errorf("scenario: %s: eNodeB %d has no radio-map site for the geo channel", where, t.ID)
				}
			}
			if g.Mobility == nil && g.Place == nil {
				return fmt.Errorf("scenario: %s needs a placement or mobility model for the geo channel", where)
			}
		case "interference_switched":
			itf := byID[g.Channel.InterfererENB]
			if itf == nil {
				return fmt.Errorf("scenario: %s.channel.interferer_enb: unknown eNodeB %d", where, g.Channel.InterfererENB)
			}
			if int(g.Channel.InterfererCell) >= itf.Cells {
				return fmt.Errorf("scenario: %s.channel.interferer_cell: eNodeB %d has no cell %d", where, g.Channel.InterfererENB, g.Channel.InterfererCell)
			}
		}
		if g.Mobility != nil && g.Mobility.Model != "static" && model == "fixed" {
			return fmt.Errorf("scenario: %s: a moving UE needs a geo channel, not %q", where, model)
		}
		if len(g.DL) == 0 && len(g.UL) == 0 {
			return fmt.Errorf("scenario: %s declares no traffic", where)
		}
	}
	for i, a := range sc.Apps {
		where := fmt.Sprintf("apps[%d]", i)
		if sc.Master == nil {
			return fmt.Errorf("scenario: %s: apps need a master (remove \"master: none\")", where)
		}
		switch a.Kind {
		case "ransharing":
			if byID[a.ENB] == nil {
				return fmt.Errorf("scenario: %s.enb: unknown eNodeB %d", where, a.ENB)
			}
		case "eicic":
			if byID[a.MacroENB] == nil {
				return fmt.Errorf("scenario: %s.macro_enb: unknown eNodeB %d", where, a.MacroENB)
			}
			for _, id := range a.SmallENBs {
				if byID[id] == nil {
					return fmt.Errorf("scenario: %s.small_enbs: unknown eNodeB %d", where, id)
				}
			}
		}
	}
	for i, d := range sc.Slices {
		where := fmt.Sprintf("slicing[%d]", i)
		if !d.All {
			t := byID[d.ENB]
			if t == nil {
				return fmt.Errorf("scenario: %s.enb: unknown eNodeB %d", where, d.ENB)
			}
			if !t.Agent {
				return fmt.Errorf("scenario: %s: eNodeB %d has no agent to slice", where, d.ENB)
			}
		}
	}
	if b := sc.Broker; b != nil {
		if sc.Master == nil {
			return fmt.Errorf("scenario: slices need a master (remove \"master: none\")")
		}
		if len(sc.Slices) > 0 {
			return fmt.Errorf("scenario: slices and slicing sections are mutually exclusive (the broker owns the slicer)")
		}
		hasAgent := false
		for i := range sc.ENBs {
			if sc.ENBs[i].Agent {
				hasAgent = true
			}
		}
		if !hasAgent {
			return fmt.Errorf("scenario: slices need at least one agent eNodeB")
		}
		names := map[string]bool{}
		groups := map[int]string{}
		for i, sp := range b.Specs {
			where := fmt.Sprintf("slices.specs[%d]", i)
			if names[sp.Name] {
				return fmt.Errorf("scenario: %s: duplicate slice name %q", where, sp.Name)
			}
			names[sp.Name] = true
			if other, ok := groups[sp.Group]; ok {
				return fmt.Errorf("scenario: %s: slices %q and %q share group %d", where, other, sp.Name, sp.Group)
			}
			groups[sp.Group] = sp.Name
			if sp.ArriveAt >= int64(sc.Run.TTIs) {
				return fmt.Errorf("scenario: %s: arrive_at TTI %d beyond run length %d", where, sp.ArriveAt, sc.Run.TTIs)
			}
		}
	}
	stalled := map[lte.ENBID]bool{}
	for i, f := range sc.Faults {
		where := fmt.Sprintf("faults[%d]", i)
		if sc.Master == nil {
			return fmt.Errorf("scenario: %s: faults need a master (remove \"master: none\")", where)
		}
		t := byID[f.ENB]
		if t == nil {
			return fmt.Errorf("scenario: %s.enb: unknown eNodeB %d", where, f.ENB)
		}
		if !t.Agent {
			return fmt.Errorf("scenario: %s: eNodeB %d has no agent to fault", where, f.ENB)
		}
		if f.At >= int64(sc.Run.TTIs) {
			return fmt.Errorf("scenario: %s: at TTI %d beyond run length %d", where, f.At, sc.Run.TTIs)
		}
		switch f.Kind {
		case "netem_set":
			if f.ToMaster == nil && f.ToAgent == nil {
				return fmt.Errorf("scenario: %s: netem_set needs a to_master or to_agent direction", where)
			}
		case "agent_stall":
			stalled[f.ENB] = true
		case "agent_resume":
			if !stalled[f.ENB] {
				return fmt.Errorf("scenario: %s: agent_resume for eNodeB %d without a preceding agent_stall", where, f.ENB)
			}
			stalled[f.ENB] = false
		case "agent_restart":
			stalled[f.ENB] = false
		}
	}
	// eNodeBs must be declared in a stable id order for deterministic
	// engine sharding regardless of map iteration anywhere upstream.
	sorted := sort.SliceIsSorted(sc.ENBs, func(i, j int) bool { return sc.ENBs[i].ID < sc.ENBs[j].ID })
	if !sorted {
		sort.SliceStable(sc.ENBs, func(i, j int) bool { return sc.ENBs[i].ID < sc.ENBs[j].ID })
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scalar helpers.

func posInt(n *yamlite.Node) (int64, error) {
	v, err := n.Int()
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, errors.New("not positive")
	}
	return v, nil
}

func nonNegInt(n *yamlite.Node) (int64, error) {
	v, err := n.Int()
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, errors.New("negative")
	}
	return v, nil
}

func probVal(n *yamlite.Node) (float64, error) {
	f, err := n.Float()
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, errors.New("out of range")
	}
	return f, nil
}

func cqiVal(n *yamlite.Node) (int64, error) {
	v, err := n.Int()
	if err != nil {
		return 0, err
	}
	if v < 1 || v > int64(lte.MaxCQI) {
		return 0, errors.New("out of range")
	}
	return v, nil
}
