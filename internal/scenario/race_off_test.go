//go:build !race

package scenario

// raceEnabled reports whether the race detector is active. The 4096-eNB
// scale gate skips under -race: instrumenting a 100k-UE run multiplies
// its cost far past a CI-sized job without adding signal (the engine's
// concurrency is already raced through the smaller scenarios).
const raceEnabled = false
