package scenario

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

// TestScale4096ENB runs the 100k-UE scale gate end to end and checks its
// digest against the committed golden. It is the slowest test in the repo
// (~10 s), so it steps aside under -short and under the race detector —
// CI runs it in the scenario matrix instead, where the budget is explicit.
func TestScale4096ENB(t *testing.T) {
	if testing.Short() {
		t.Skip("scale gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scale gate skipped under -race")
	}
	doc, err := os.ReadFile("../../scenarios/scale-4096enb.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(string(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := sc.RunWorkers(4)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenDigest(t, "scale-4096enb")
	if res.Summary.Digest != want {
		t.Fatalf("digest %s, want golden %s", res.Summary.Digest, want)
	}
	if res.Summary.Attached < 100000 {
		t.Fatalf("only %d UEs attached; the gate is supposed to carry 100k+", res.Summary.Attached)
	}
}

// goldenDigest looks one scenario's digest up in the committed golden file.
func goldenDigest(t *testing.T, name string) string {
	t.Helper()
	f, err := os.Open("../../scenarios/GOLDENS.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			return fields[1]
		}
	}
	t.Fatalf("no golden digest for %q", name)
	return ""
}
