package scenario

import (
	"math"
	"reflect"
	"testing"
)

func parseHC(t *testing.T, body string) *Scenario {
	t.Helper()
	doc := `
name: hc
run:
  ttis: 10
topology:
  honeycomb:
` + body + `
ues:
  - count: 1
    enb: 1
    imsi_base: 1
    channel:
      model: fixed
      cqi: 10
    traffic:
      - kind: cbr
        rate_kbps: 64
`
	sc, err := Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}

func TestHoneycombRingCounts(t *testing.T) {
	// R complete rings hold 1 + 3R(R+1) sites.
	for rings, want := range map[int]int{0: 1, 1: 7, 2: 19, 3: 37} {
		sc := parseHC(t, "    rings: "+itoa(rings))
		if len(sc.ENBs) != want {
			t.Errorf("rings=%d: %d eNodeBs, want %d", rings, len(sc.ENBs), want)
		}
	}
	// An explicit count truncates the spiral mid-ring.
	sc := parseHC(t, "    enbs: 10")
	if len(sc.ENBs) != 10 {
		t.Fatalf("enbs=10: got %d eNodeBs", len(sc.ENBs))
	}
	for i, d := range sc.ENBs {
		if int(d.ID) != i+1 {
			t.Fatalf("eNodeB %d has id %d, want %d", i, d.ID, i+1)
		}
		if d.Seed != 1+int64(i) {
			t.Fatalf("eNodeB %d has seed %d, want %d", i, d.Seed, 1+int64(i))
		}
		if !d.HasSite || !d.Agent {
			t.Fatalf("eNodeB %d must be an agent with a radio-map site: %+v", i, d)
		}
	}
}

func TestHoneycombSitePositions(t *testing.T) {
	const pitch = 800.0
	sc := parseHC(t, "    rings: 1\n    pitch_m: 800")
	c := sc.ENBs[0]
	if c.X != 0 || c.Y != 0 {
		t.Fatalf("centre site at (%g, %g), want origin", c.X, c.Y)
	}
	seen := map[[2]int]bool{}
	for _, d := range sc.ENBs[1:] {
		r := math.Hypot(d.X-c.X, d.Y-c.Y)
		if math.Abs(r-pitch) > 1e-9 {
			t.Errorf("ring-1 site %d at distance %g, want pitch %g", d.ID, r, pitch)
		}
		key := [2]int{int(math.Round(d.X)), int(math.Round(d.Y))}
		if seen[key] {
			t.Errorf("duplicate site position %v", key)
		}
		seen[key] = true
	}
	if len(seen) != 6 {
		t.Fatalf("ring 1 has %d distinct sites, want 6", len(seen))
	}
	// Sectored sites multiply carriers, not positions.
	sc3 := parseHC(t, "    rings: 1\n    sectors: 3")
	for _, d := range sc3.ENBs {
		if d.Cells != 3 {
			t.Fatalf("eNodeB %d has %d cells, want 3 sectors", d.ID, d.Cells)
		}
	}
}

func TestHoneycombDeterminism(t *testing.T) {
	a := parseHC(t, "    rings: 2\n    pitch_m: 650\n    seed_base: 9")
	b := parseHC(t, "    rings: 2\n    pitch_m: 650\n    seed_base: 9")
	if !reflect.DeepEqual(a.ENBs, b.ENBs) {
		t.Fatal("honeycomb expansion is not deterministic")
	}
}

func TestHoneycombSizeValidation(t *testing.T) {
	for _, body := range []string{
		"    pitch_m: 500",               // neither enbs nor rings
		"    enbs: 7\n    rings: 1",      // both
		"    enbs: 7\n    pitch_m: -1",   // bad pitch
		"    enbs: 7\n    bogus_knob: 1", // unknown knob
	} {
		doc := "name: x\nrun:\n  ttis: 1\ntopology:\n  honeycomb:\n" + body + "\n"
		if _, err := Parse(doc); err == nil {
			t.Errorf("expected parse error for honeycomb body %q", body)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
