package yamlite

import (
	"strings"
	"testing"
)

// The motivating document: a FlexRAN policy reconfiguration message
// mirroring Fig. 3 of the paper.
const policyDoc = `
# policy reconfiguration for the MAC control module
mac:
  dl_scheduler:
    behavior: flexran.sched.pf
    parameters:
      rb_share: [0.7, 0.3]
      fairness: 1.0
      name: "premium tier"
  ul_scheduler:
    behavior: flexran.sched.rr
`

func TestParsePolicyDocument(t *testing.T) {
	root, err := Parse(policyDoc)
	if err != nil {
		t.Fatal(err)
	}
	mac := root.Get("mac")
	if mac == nil || mac.Kind != KindMap {
		t.Fatalf("mac node missing: %+v", root)
	}
	dl := mac.Get("dl_scheduler")
	if got := dl.Get("behavior").Str(); got != "flexran.sched.pf" {
		t.Errorf("behavior = %q", got)
	}
	params := dl.Get("parameters")
	share, err := params.Get("rb_share").Floats()
	if err != nil {
		t.Fatal(err)
	}
	if len(share) != 2 || share[0] != 0.7 || share[1] != 0.3 {
		t.Errorf("rb_share = %v", share)
	}
	f, err := params.Get("fairness").Float()
	if err != nil || f != 1.0 {
		t.Errorf("fairness = %v, %v", f, err)
	}
	if got := params.Get("name").Str(); got != "premium tier" {
		t.Errorf("name = %q", got)
	}
	if got := mac.Get("ul_scheduler").Get("behavior").Str(); got != "flexran.sched.rr" {
		t.Errorf("ul behavior = %q", got)
	}
	keys := mac.Keys()
	if len(keys) != 2 || keys[0] != "dl_scheduler" || keys[1] != "ul_scheduler" {
		t.Errorf("key order = %v", keys)
	}
}

func TestParseBlockSequence(t *testing.T) {
	doc := `
vsfs:
  - name: dl_ue_sched
    behavior: remote_stub
  - name: ul_ue_sched
    behavior: local_rr
plain:
  - 1
  - 2
  - 3
`
	root, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	vsfs := root.Get("vsfs")
	if vsfs.Kind != KindSeq || vsfs.Len() != 2 {
		t.Fatalf("vsfs = %+v", vsfs)
	}
	first := vsfs.Items()[0]
	if first.Get("name").Str() != "dl_ue_sched" || first.Get("behavior").Str() != "remote_stub" {
		t.Errorf("first item = %v %v", first.Get("name").Str(), first.Get("behavior").Str())
	}
	plain := root.Get("plain")
	if plain.Len() != 3 {
		t.Fatalf("plain = %+v", plain)
	}
	v, err := plain.Items()[2].Int()
	if err != nil || v != 3 {
		t.Errorf("plain[2] = %v, %v", v, err)
	}
}

func TestScalarTypes(t *testing.T) {
	doc := `
i: 42
f: 2.5
neg: -7
t: true
y: yes
n: off
s: hello
q: "a: b # c"
`
	root, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Get("i").Int(); v != 42 {
		t.Errorf("i = %d", v)
	}
	if v, _ := root.Get("f").Float(); v != 2.5 {
		t.Errorf("f = %v", v)
	}
	if v, _ := root.Get("neg").Int(); v != -7 {
		t.Errorf("neg = %d", v)
	}
	for key, want := range map[string]bool{"t": true, "y": true, "n": false} {
		if v, err := root.Get(key).Bool(); err != nil || v != want {
			t.Errorf("%s = %v, %v", key, v, err)
		}
	}
	if _, err := root.Get("s").Bool(); err == nil {
		t.Error("hello should not parse as bool")
	}
	if got := root.Get("q").Str(); got != "a: b # c" {
		t.Errorf("q = %q", got)
	}
}

func TestInlineSequences(t *testing.T) {
	root, err := Parse(`xs: [1, 2, 3]
nested: [[1, 2], [3]]
empty: []
strs: ["a, b", 'c']`)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := root.Get("xs").Floats()
	if err != nil || len(xs) != 3 || xs[2] != 3 {
		t.Errorf("xs = %v, %v", xs, err)
	}
	nested := root.Get("nested")
	if nested.Len() != 2 || nested.Items()[0].Len() != 2 {
		t.Errorf("nested = %+v", nested)
	}
	if root.Get("empty").Len() != 0 {
		t.Error("empty should have no items")
	}
	strs, err := root.Get("strs").Strings()
	if err != nil || strs[0] != "a, b" || strs[1] != "c" {
		t.Errorf("strs = %v, %v", strs, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a:\n\tb: 1",        // tab indentation
		"a: [1, 2",          // unterminated inline seq
		"a: 1\na: 2",        // duplicate key
		"a:\n  - x\n  b: 1", // seq then map at same level
	}
	for _, doc := range bad {
		if _, err := Parse(doc); err == nil {
			t.Errorf("Parse(%q) should fail", doc)
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	root, err := Parse("\n# only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != KindMap || root.Len() != 0 {
		t.Errorf("empty doc = %+v", root)
	}
}

func TestEmptyValue(t *testing.T) {
	root, err := Parse("a:\nb: 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Get("a").Str(); got != "" {
		t.Errorf("a = %q", got)
	}
}

func TestBareScalarDocument(t *testing.T) {
	root, err := Parse("just-a-scalar")
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != KindScalar || root.Str() != "just-a-scalar" {
		t.Errorf("root = %+v", root)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	root, err := Parse(policyDoc)
	if err != nil {
		t.Fatal(err)
	}
	out := Marshal(root)
	again, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	// Compare by re-marshaling: stable output implies structural equality.
	if Marshal(again) != out {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", out, Marshal(again))
	}
	if again.Get("mac").Get("dl_scheduler").Get("behavior").Str() != "flexran.sched.pf" {
		t.Error("content lost in round trip")
	}
}

func TestMarshalProgrammaticBuild(t *testing.T) {
	// The controller builds policy documents with the node API.
	doc := Map().Set("mac", Map().
		Set("dl_scheduler", Map().
			Set("behavior", Scalar("flexran.sched.slice")).
			Set("parameters", Map().
				Set("rb_share", Seq(Scalar(0.4), Scalar(0.6))))))
	out := Marshal(doc)
	root, err := Parse(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	share, err := root.Get("mac").Get("dl_scheduler").Get("parameters").Get("rb_share").Floats()
	if err != nil || share[0] != 0.4 || share[1] != 0.6 {
		t.Errorf("share = %v, %v", share, err)
	}
}

func TestMarshalQuoting(t *testing.T) {
	doc := Map().Set("k", Scalar("needs: quoting"))
	out := Marshal(doc)
	if !strings.Contains(out, `"needs: quoting"`) {
		t.Errorf("special chars not quoted: %s", out)
	}
	root, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if root.Get("k").Str() != "needs: quoting" {
		t.Errorf("round trip = %q", root.Get("k").Str())
	}
}

func TestCommentStripping(t *testing.T) {
	root, err := Parse(`a: 1 # trailing
# full line
b: "#notcomment"`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Get("a").Int(); v != 1 {
		t.Errorf("a = %v", v)
	}
	if got := root.Get("b").Str(); got != "#notcomment" {
		t.Errorf("b = %q", got)
	}
}

func TestDeepNesting(t *testing.T) {
	doc := "a:\n  b:\n    c:\n      d: leaf\n"
	root, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Get("a").Get("b").Get("c").Get("d").Str(); got != "leaf" {
		t.Errorf("leaf = %q", got)
	}
	// Nil-safety of Get chains on missing paths.
	if root.Get("a").Get("zzz").Get("c") != nil {
		t.Error("missing path should yield nil")
	}
}

// TestParseErrorMessages pins the exact diagnostics of every parse
// failure mode: line numbers and reasons are the user interface of the
// policy/scenario pipeline, so regressions here break operator-facing
// errors even when parsing itself still fails "correctly".
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			name: "tab indentation",
			doc:  "a:\n\tb: 1",
			want: "yamlite: line 2: tabs are not allowed in indentation",
		},
		{
			name: "duplicate key",
			doc:  "a: 1\na: 2",
			want: `yamlite: line 2: duplicate key "a"`,
		},
		{
			name: "duplicate nested key",
			doc:  "m:\n  x: 1\n  x: 2",
			want: `yamlite: line 3: duplicate key "x"`,
		},
		{
			name: "bad indentation inside map",
			doc:  "a: 1\n   b: 2",
			want: "yamlite: line 2: unexpected indentation",
		},
		{
			name: "seq item then map entry at one level",
			doc:  "a:\n  - x\n  b: 1",
			want: "yamlite: line 3: expected sequence item",
		},
		{
			name: "map entry then seq item at one level",
			doc:  "a:\n  b: 1\n  - x",
			want: "yamlite: line 3: expected 'key:' entry",
		},
		{
			name: "unterminated inline sequence",
			doc:  "a: [1, 2",
			want: `yamlite: line 1: unterminated inline sequence "[1, 2"`,
		},
		{
			name: "bad quoted string",
			doc:  `a: "unclosed`,
			want: `yamlite: line 1: bad quoted string "unclosed`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.doc)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", tc.doc)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q\n      want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestScalarTypeMismatches covers the typed accessors' error paths: every
// scenario/policy knob funnels through these, so a wrong value must fail
// loudly rather than zero-fill.
func TestScalarTypeMismatches(t *testing.T) {
	root, err := Parse("num: 7\nstr: hello\nseq: [1, oops]\nmap:\n  k: v\nflag: maybe\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Get("str").Int(); err == nil {
		t.Error("Int on a non-numeric scalar should fail")
	}
	if _, err := root.Get("str").Float(); err == nil {
		t.Error("Float on a non-numeric scalar should fail")
	}
	if _, err := root.Get("map").Int(); err == nil {
		t.Error("Int on a map should fail")
	}
	if _, err := root.Get("seq").Float(); err == nil {
		t.Error("Float on a sequence should fail")
	}
	if _, err := root.Get("seq").Floats(); err == nil {
		t.Error("Floats over a sequence with a non-float item should fail")
	}
	if _, err := root.Get("num").Strings(); err == nil {
		t.Error("Strings on a scalar should fail")
	}
	if _, err := root.Get("flag").Bool(); err == nil {
		t.Error("Bool on a non-boolean scalar should fail")
	}
	if got := root.Get("flag").Str(); got != "maybe" {
		t.Errorf("Str = %q, want \"maybe\"", got)
	}
	if _, err := root.Get("missing").Int(); err == nil {
		t.Error("Int on a missing node should fail")
	}
	if _, err := root.Get("missing").Bool(); err == nil {
		t.Error("Bool on a missing node should fail")
	}
}

// TestEmptyInlineElements: empty elements of an inline sequence (trailing
// comma, double comma) stay empty scalars — the unterminated-quote guard
// must not touch them (regression: it used to index text[0] blindly).
func TestEmptyInlineElements(t *testing.T) {
	for _, doc := range []string{"a: [1, 2,]", "a: [1,,2]", "a: [ ]"} {
		root, err := Parse(doc)
		if err != nil {
			t.Errorf("Parse(%q): %v", doc, err)
			continue
		}
		if root.Get("a").Kind != KindSeq {
			t.Errorf("Parse(%q): a is not a sequence", doc)
		}
	}
}
