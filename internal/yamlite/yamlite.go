// Package yamlite is a minimal YAML-subset parser and emitter, written for
// the FlexRAN policy reconfiguration mechanism (paper §4.3.1, Fig. 3): the
// master controller expresses VSF swaps and parameter updates as an
// indentation-structured document such as
//
//	mac:
//	  dl_scheduler:
//	    behavior: flexran.sched.pf
//	    parameters:
//	      rb_share: [0.7, 0.3]
//	      fairness: 1.0
//
// The stdlib has no YAML support and the module must stay dependency-free,
// so this package implements the subset the protocol needs: nested maps,
// block sequences ("- item"), inline sequences ("[a, b]"), scalars with
// int/float/bool/string interpretation, quoted strings and '#' comments.
// Anchors, aliases, multi-document streams and flow maps are out of scope.
package yamlite

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates node types.
type Kind uint8

// Node kinds.
const (
	KindScalar Kind = iota
	KindMap
	KindSeq
)

func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindMap:
		return "map"
	case KindSeq:
		return "seq"
	}
	return "invalid"
}

// Node is one value in a parsed document.
type Node struct {
	Kind     Kind
	scalar   string
	quoted   bool
	keys     []string // map key order as written
	children map[string]*Node
	items    []*Node
}

// Scalar returns a new scalar node.
func Scalar(v interface{}) *Node {
	return &Node{Kind: KindScalar, scalar: fmt.Sprint(v)}
}

// Map returns a new empty map node.
func Map() *Node {
	return &Node{Kind: KindMap, children: map[string]*Node{}}
}

// Seq returns a new sequence node holding the given items.
func Seq(items ...*Node) *Node {
	return &Node{Kind: KindSeq, items: items}
}

// Set adds or replaces a map entry, preserving first-insertion order.
func (n *Node) Set(key string, v *Node) *Node {
	if n.Kind != KindMap {
		panic("yamlite: Set on non-map node")
	}
	if _, ok := n.children[key]; !ok {
		n.keys = append(n.keys, key)
	}
	n.children[key] = v
	return n
}

// Get returns the child node for a map key, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != KindMap {
		return nil
	}
	return n.children[key]
}

// Keys returns the map keys in document order.
func (n *Node) Keys() []string {
	if n == nil {
		return nil
	}
	return append([]string(nil), n.keys...)
}

// Items returns the sequence items.
func (n *Node) Items() []*Node {
	if n == nil {
		return nil
	}
	return n.items
}

// Len returns the number of entries (map) or items (sequence), 0 otherwise.
func (n *Node) Len() int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case KindMap:
		return len(n.keys)
	case KindSeq:
		return len(n.items)
	}
	return 0
}

// Str returns the scalar as a string ("" for nil or non-scalars).
func (n *Node) Str() string {
	if n == nil || n.Kind != KindScalar {
		return ""
	}
	return n.scalar
}

// Int returns the scalar parsed as an integer.
func (n *Node) Int() (int64, error) {
	if n == nil || n.Kind != KindScalar {
		return 0, errors.New("yamlite: not a scalar")
	}
	return strconv.ParseInt(n.scalar, 10, 64)
}

// Float returns the scalar parsed as a float.
func (n *Node) Float() (float64, error) {
	if n == nil || n.Kind != KindScalar {
		return 0, errors.New("yamlite: not a scalar")
	}
	return strconv.ParseFloat(n.scalar, 64)
}

// Bool returns the scalar parsed as a boolean (true/false/yes/no/on/off).
func (n *Node) Bool() (bool, error) {
	if n == nil || n.Kind != KindScalar {
		return false, errors.New("yamlite: not a scalar")
	}
	switch strings.ToLower(n.scalar) {
	case "true", "yes", "on":
		return true, nil
	case "false", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("yamlite: %q is not a boolean", n.scalar)
}

// Floats returns a sequence interpreted as a float slice.
func (n *Node) Floats() ([]float64, error) {
	if n == nil || n.Kind != KindSeq {
		return nil, errors.New("yamlite: not a sequence")
	}
	out := make([]float64, 0, len(n.items))
	for _, it := range n.items {
		f, err := it.Float()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Strings returns a sequence interpreted as a string slice.
func (n *Node) Strings() ([]string, error) {
	if n == nil || n.Kind != KindSeq {
		return nil, errors.New("yamlite: not a sequence")
	}
	out := make([]string, 0, len(n.items))
	for _, it := range n.items {
		out = append(out, it.Str())
	}
	return out, nil
}

// line is a logical input line with indentation resolved.
type line struct {
	num    int
	indent int
	text   string // content with indentation stripped
}

// Parse parses a document into its root node (a map, sequence or scalar).
func Parse(doc string) (*Node, error) {
	var lines []line
	for i, raw := range strings.Split(doc, "\n") {
		text := stripComment(raw)
		if strings.TrimSpace(text) == "" {
			continue
		}
		trimmed := strings.TrimLeft(text, " ")
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("yamlite: line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, line{
			num:    i + 1,
			indent: len(text) - len(trimmed),
			text:   strings.TrimSpace(trimmed),
		})
	}
	if len(lines) == 0 {
		return Map(), nil
	}
	p := &parser{lines: lines}
	n, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("yamlite: line %d: unexpected de-indent structure", p.lines[p.pos].num)
	}
	return n, nil
}

// stripComment removes a trailing # comment that is not inside quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the run of lines at exactly the given indentation.
func (p *parser) parseBlock(indent int) (*Node, error) {
	first, ok := p.peek()
	if !ok {
		return nil, errors.New("yamlite: empty block")
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSeq(indent)
	}
	if isMapEntry(first.text) {
		return p.parseMap(indent)
	}
	// Bare scalar document.
	p.pos++
	v, err := parseScalarOrInline(first.text)
	if err != nil {
		return nil, fmt.Errorf("yamlite: line %d: %v", first.num, err)
	}
	return v, nil
}

func isMapEntry(text string) bool {
	k, _, ok := splitKey(text)
	return ok && k != ""
}

// splitKey splits "key: value" at the first unquoted ": " or trailing ":".
func splitKey(text string) (key, rest string, ok bool) {
	inS, inD := false, false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i == len(text)-1 {
				return strings.TrimSpace(text[:i]), "", true
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+2:]), true
			}
		}
	}
	return "", "", false
}

func (p *parser) parseMap(indent int) (*Node, error) {
	m := Map()
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return m, nil
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", ln.num)
		}
		key, rest, isMap := splitKey(ln.text)
		if !isMap {
			return nil, fmt.Errorf("yamlite: line %d: expected 'key:' entry", ln.num)
		}
		key = unquote(key)
		if _, dup := m.children[key]; dup {
			return nil, fmt.Errorf("yamlite: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalarOrInline(rest)
			if err != nil {
				return nil, fmt.Errorf("yamlite: line %d: %v", ln.num, err)
			}
			m.Set(key, v)
			continue
		}
		// Value is a nested block (or an empty scalar if nothing deeper).
		next, ok := p.peek()
		if !ok || next.indent <= indent {
			m.Set(key, Scalar(""))
			continue
		}
		child, err := p.parseBlock(next.indent)
		if err != nil {
			return nil, err
		}
		m.Set(key, child)
	}
}

func (p *parser) parseSeq(indent int) (*Node, error) {
	seq := &Node{Kind: KindSeq}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return seq, nil
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", ln.num)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, fmt.Errorf("yamlite: line %d: expected sequence item", ln.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		p.pos++
		if rest == "" {
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				seq.items = append(seq.items, Scalar(""))
				continue
			}
			child, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, child)
			continue
		}
		if isMapEntry(rest) {
			// "- key: value" starts an inline map item whose further keys
			// sit two spaces deeper than the dash.
			itemIndent := ln.indent + 2
			item := Map()
			key, val, _ := splitKey(rest)
			if val != "" {
				v, err := parseScalarOrInline(val)
				if err != nil {
					return nil, fmt.Errorf("yamlite: line %d: %v", ln.num, err)
				}
				item.Set(unquote(key), v)
			} else {
				item.Set(unquote(key), Scalar(""))
			}
			for {
				next, ok := p.peek()
				if !ok || next.indent != itemIndent || !isMapEntry(next.text) {
					break
				}
				sub, err := p.parseMap(itemIndent)
				if err != nil {
					return nil, err
				}
				for _, k := range sub.keys {
					item.Set(k, sub.children[k])
				}
			}
			seq.items = append(seq.items, item)
			continue
		}
		v, err := parseScalarOrInline(rest)
		if err != nil {
			return nil, fmt.Errorf("yamlite: line %d: %v", ln.num, err)
		}
		seq.items = append(seq.items, v)
	}
}

// parseScalarOrInline parses a scalar or an inline [a, b, c] sequence.
func parseScalarOrInline(text string) (*Node, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("unterminated inline sequence %q", text)
		}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		seq := &Node{Kind: KindSeq}
		if inner == "" {
			return seq, nil
		}
		for _, part := range splitInline(inner) {
			item, err := parseScalarOrInline(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
		}
		return seq, nil
	}
	n := &Node{Kind: KindScalar}
	switch {
	case len(text) >= 2 && text[0] == '"' && text[len(text)-1] == '"':
		u, err := strconv.Unquote(text)
		if err != nil {
			return nil, fmt.Errorf("bad quoted string %s", text)
		}
		n.scalar, n.quoted = u, true
	case len(text) >= 2 && text[0] == '\'' && text[len(text)-1] == '\'':
		n.scalar = strings.ReplaceAll(text[1:len(text)-1], "''", "'")
		n.quoted = true
	case len(text) > 0 && (text[0] == '"' || text[0] == '\''):
		// A leading quote without a matching closer would otherwise be
		// swallowed as a literal scalar — surface the typo instead.
		return nil, fmt.Errorf("bad quoted string %s", text)
	default:
		n.scalar = text
	}
	return n, nil
}

// splitInline splits "a, b, [c, d]" on top-level commas.
func splitInline(s string) []string {
	var parts []string
	depth := 0
	start := 0
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[':
			if !inS && !inD {
				depth++
			}
		case ']':
			if !inS && !inD {
				depth--
			}
		case ',':
			if depth == 0 && !inS && !inD {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"') {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
	}
	return s
}

// Marshal renders a node tree back into document text. Maps keep insertion
// order; the output round-trips through Parse.
func Marshal(n *Node) string {
	var b strings.Builder
	marshalNode(&b, n, 0)
	return b.String()
}

func marshalNode(b *strings.Builder, n *Node, indent int) {
	pad := strings.Repeat(" ", indent)
	switch n.Kind {
	case KindMap:
		keys := n.keys
		if keys == nil {
			keys = make([]string, 0, len(n.children))
			for k := range n.children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
		}
		for _, k := range keys {
			c := n.children[k]
			switch {
			case c == nil:
				fmt.Fprintf(b, "%s%s:\n", pad, k)
			case c.Kind == KindScalar:
				fmt.Fprintf(b, "%s%s: %s\n", pad, k, renderScalar(c))
			case c.Kind == KindSeq && allScalars(c):
				fmt.Fprintf(b, "%s%s: %s\n", pad, k, renderInlineSeq(c))
			default:
				fmt.Fprintf(b, "%s%s:\n", pad, k)
				marshalNode(b, c, indent+2)
			}
		}
	case KindSeq:
		for _, it := range n.items {
			if it.Kind == KindScalar {
				fmt.Fprintf(b, "%s- %s\n", pad, renderScalar(it))
			} else {
				fmt.Fprintf(b, "%s-\n", pad)
				marshalNode(b, it, indent+2)
			}
		}
	case KindScalar:
		fmt.Fprintf(b, "%s%s\n", pad, renderScalar(n))
	}
}

func allScalars(n *Node) bool {
	for _, it := range n.items {
		if it.Kind != KindScalar {
			return false
		}
	}
	return true
}

func renderInlineSeq(n *Node) string {
	parts := make([]string, len(n.items))
	for i, it := range n.items {
		parts[i] = renderScalar(it)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func renderScalar(n *Node) string {
	s := n.scalar
	if n.quoted || s == "" || strings.ContainsAny(s, ":#[],\"'") ||
		s != strings.TrimSpace(s) {
		return strconv.Quote(s)
	}
	return s
}
