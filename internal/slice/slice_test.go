package slice

import (
	"encoding/json"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "gold", Group: 1, Weight: 2,
		SLA:       SLA{MinThroughputKbps: 1000},
		Admission: AdmissionPolicy{AdmitAbove: 0.5, RejectBelow: 0.1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{},                        // no name
		{Name: "x", Group: -1},    // negative group
		{Name: "x", Weight: -1},   // negative weight
		{Name: "x", ArriveAt: -1}, // negative arrival
		{Name: "x", HysteresisEpochs: -1},
		{Name: "x", SLA: SLA{MinThroughputKbps: -1}},
		{Name: "x", Admission: AdmissionPolicy{AdmitAbove: 0.1, RejectBelow: 0.5}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad[%d] %+v accepted", i, sp)
		}
	}
	if w := (&Spec{}).EffectiveWeight(); w != 1 {
		t.Errorf("zero weight resolves to %v, want 1", w)
	}
}

func TestDecisionJSONRoundTrip(t *testing.T) {
	for _, d := range []Decision{Pending, Admitted, Degraded, Rejected} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+d.String()+`"` {
			t.Errorf("%v marshals to %s", d, b)
		}
		var back Decision
		if err := json.Unmarshal(b, &back); err != nil || back != d {
			t.Errorf("%s round-trips to %v (%v)", b, back, err)
		}
	}
	var d Decision
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Error("unknown decision name accepted")
	}
}
