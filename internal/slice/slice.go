// Package slice defines the declarative slicing resource model: a Spec
// names one network slice — a UE group with an SLA, a weight and an
// admission policy — and a Status reports the broker's live view of it.
// The types are shared by the slice broker application (the controller of
// the closed loop), the scenario schema (slices: blocks) and the
// northbound API (/slices resources), so every surface speaks the same
// resource language instead of raw share vectors.
package slice

import (
	"encoding/json"
	"fmt"
)

// SLA declares a slice's service-level objectives. A zero field means "no
// objective of that kind": attainment is then computed only over the
// declared objectives.
type SLA struct {
	// MinThroughputKbps is the slice's aggregate downlink throughput floor
	// across its member UEs.
	MinThroughputKbps float64 `json:"min_throughput_kbps,omitempty"`
	// MaxQueueMs is the ceiling on the worst per-UE head-of-line delay of
	// the slice's default bearer.
	MaxQueueMs float64 `json:"max_queue_ms,omitempty"`
}

// Defined reports whether the SLA declares at least one objective.
func (s SLA) Defined() bool { return s.MinThroughputKbps > 0 || s.MaxQueueMs > 0 }

// AdmissionPolicy sets the thresholds the broker applies to the projected
// SLA attainment of an arriving slice: at or above AdmitAbove the slice is
// admitted at full weight, below RejectBelow it is rejected outright, and
// in between it is degraded — admitted at reduced weight.
type AdmissionPolicy struct {
	AdmitAbove  float64 `json:"admit_above"`
	RejectBelow float64 `json:"reject_below"`
}

// Spec is the declarative description of one slice.
type Spec struct {
	// Name identifies the slice (the northbound resource key).
	Name string `json:"name"`
	// Group is the UE-group label that defines membership: UEs reporting
	// this group label belong to the slice, and the agent-side slicing
	// scheduler's share vector is indexed by it.
	Group int `json:"group"`
	// Weight is the slice's relative claim when capacity is contended
	// (water-filling weight). Zero means the default of 1.
	Weight float64 `json:"weight,omitempty"`
	// SLA is the slice's service-level objective set.
	SLA SLA `json:"sla"`
	// Admission is applied when the slice arrives (ArriveAt).
	Admission AdmissionPolicy `json:"admission"`
	// ArriveAt is the cycle offset (from the broker arming) at which the
	// slice requests admission; zero means present from the start, which
	// bypasses admission control.
	ArriveAt int64 `json:"arrive_at,omitempty"`
	// HysteresisEpochs is how many consecutive epochs attainment must sit
	// on the other side of the SLA line before the violation state flips.
	// Zero means the broker default.
	HysteresisEpochs int `json:"hysteresis_epochs,omitempty"`
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("slice: spec needs a name")
	}
	if s.Group < 0 {
		return fmt.Errorf("slice %s: group must be non-negative", s.Name)
	}
	if s.Weight < 0 {
		return fmt.Errorf("slice %s: weight must be non-negative", s.Name)
	}
	if s.SLA.MinThroughputKbps < 0 || s.SLA.MaxQueueMs < 0 {
		return fmt.Errorf("slice %s: SLA targets must be non-negative", s.Name)
	}
	if s.Admission.RejectBelow < 0 || s.Admission.AdmitAbove < s.Admission.RejectBelow {
		return fmt.Errorf("slice %s: admission thresholds need 0 <= reject_below <= admit_above", s.Name)
	}
	if s.ArriveAt < 0 {
		return fmt.Errorf("slice %s: arrive_at must be non-negative", s.Name)
	}
	if s.HysteresisEpochs < 0 {
		return fmt.Errorf("slice %s: hysteresis_epochs must be non-negative", s.Name)
	}
	return nil
}

// EffectiveWeight resolves the zero-means-default weight.
func (s *Spec) EffectiveWeight() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Decision is an admission-control outcome.
type Decision int

const (
	// Pending: the slice has not arrived yet (ArriveAt in the future).
	Pending Decision = iota
	// Admitted: full-weight member of the share plan.
	Admitted
	// Degraded: admitted at reduced weight (projected attainment between
	// the policy thresholds).
	Degraded
	// Rejected: no share; the slice's group is starved.
	Rejected
)

var decisionNames = [...]string{"pending", "admitted", "degraded", "rejected"}

// String names the decision.
func (d Decision) String() string {
	if d < 0 || int(d) >= len(decisionNames) {
		return fmt.Sprintf("decision(%d)", int(d))
	}
	return decisionNames[d]
}

// MarshalJSON renders the decision as its name.
func (d Decision) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts the name form emitted by MarshalJSON.
func (d *Decision) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range decisionNames {
		if s == name {
			*d = Decision(i)
			return nil
		}
	}
	return fmt.Errorf("slice: unknown decision %q", s)
}

// Status is the broker's live view of one slice: the last epoch's
// measurement, the SLA attainment it implies, and the admission state.
type Status struct {
	Name     string   `json:"name"`
	Group    int      `json:"group"`
	Decision Decision `json:"decision"`
	// Share is the PRB fraction the current plan grants the slice.
	Share float64 `json:"share"`
	// UEs, ThroughputKbps and QueueMs are the last epoch's measurement:
	// member count, aggregate downlink rate, and worst head-of-line delay.
	UEs            int     `json:"ues"`
	ThroughputKbps float64 `json:"throughput_kbps"`
	QueueMs        float64 `json:"queue_ms"`
	// Attainment is the measured SLA attainment, the minimum over the
	// declared objectives of achieved/target (1 = exactly met; capped at
	// reporting time, not in the control law). Slices with no SLA read 1.
	Attainment float64 `json:"attainment"`
	// Projected is the attainment the admission controller projected when
	// the slice arrived (zero for slices present from the start).
	Projected float64 `json:"projected,omitempty"`
	// Violating is the hysteresis-filtered violation state;
	// ViolationEpochs counts epochs spent violating, Epochs the epochs
	// measured.
	Violating       bool `json:"violating"`
	ViolationEpochs int  `json:"violation_epochs"`
	Epochs          int  `json:"epochs"`
}
